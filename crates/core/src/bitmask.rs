//! Complementary bitmask pairs for vertical hashing.

use vcf_traits::BuildError;

/// A pair of complementary bitmasks `(bm1, bm2)` over a `domain_bits`-wide
/// window, the knob behind vertical hashing and the IVCF trade-off.
///
/// Theorem 1 of the paper requires `bm1 = ¬bm2` (over the mask domain) for
/// the four candidate buckets to be mutually derivable. The *shape* of
/// `bm1` — specifically how many one-bits it has — controls the
/// probability `P` (the paper's `r`) that an item really receives four
/// distinct candidates rather than collapsing to two (Equ. 8):
///
/// ```text
/// P = 1 − (2^l + 2^(f−l) − 1) / 2^f ,   l = number of 0s in bm1
/// ```
///
/// `IVCF_i` is exactly the VCF built from [`MaskPair::with_ones`]`(i, f)`.
/// The balanced split (`i = f/2`) maximizes `P` and is the paper's
/// standard VCF.
///
/// # Examples
///
/// ```
/// use vcf_core::MaskPair;
///
/// let masks = MaskPair::balanced(14)?;
/// assert_eq!(masks.bm1() & masks.bm2(), 0);
/// assert_eq!(masks.bm1() | masks.bm2(), (1 << 14) - 1);
/// // Balanced 7/7 split over 14 bits: the paper's r = 0.9844.
/// assert!((masks.expected_r() - 0.9844).abs() < 1e-3);
/// # Ok::<(), vcf_traits::BuildError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaskPair {
    bm1: u64,
    domain_bits: u32,
}

impl MaskPair {
    /// Builds the standard VCF mask pair: `bm1` takes the low half of the
    /// domain (`⌈f/2⌉` ones), `bm2` the high half.
    ///
    /// # Errors
    ///
    /// Returns an error when `domain_bits < 2` (both masks must be
    /// non-empty) or `domain_bits > 63`.
    pub fn balanced(domain_bits: u32) -> Result<Self, BuildError> {
        Self::with_ones(domain_bits / 2, domain_bits)
    }

    /// Builds the `IVCF_i` mask pair: `bm1` has exactly `ones` one-bits
    /// (placed in the low positions), `bm2` is its complement within the
    /// domain.
    ///
    /// # Errors
    ///
    /// Returns an error unless `1 ≤ ones < domain_bits ≤ 63`: with zero
    /// ones (or all ones) one of the fragments is always empty and "VCF
    /// will be degraded as CF" (Section IV-A) — construct a plain CF
    /// instead.
    pub fn with_ones(ones: u32, domain_bits: u32) -> Result<Self, BuildError> {
        if !(2..=63).contains(&domain_bits) {
            return Err(BuildError::InvalidConfig {
                reason: format!("mask domain must be 2..=63 bits, got {domain_bits}"),
            });
        }
        if ones == 0 || ones >= domain_bits {
            return Err(BuildError::InvalidConfig {
                reason: format!(
                    "bm1 must have between 1 and {} one-bits within a {domain_bits}-bit \
                     domain, got {ones} (all-zero or all-one bm1 degrades VCF to CF)",
                    domain_bits - 1
                ),
            });
        }
        Ok(Self {
            bm1: (1u64 << ones) - 1,
            domain_bits,
        })
    }

    /// Builds an `IVCF_i`-popcount pair with the one-bits of `bm1` spread
    /// evenly across the domain (e.g. `0101…` for the balanced case)
    /// instead of packed low. Equ. 8 predicts `P` from the popcount
    /// alone; the `ablation` experiment verifies placement is irrelevant.
    ///
    /// # Errors
    ///
    /// Same domain/popcount requirements as [`MaskPair::with_ones`].
    pub fn interleaved(ones: u32, domain_bits: u32) -> Result<Self, BuildError> {
        if !(2..=63).contains(&domain_bits) {
            return Err(BuildError::InvalidConfig {
                reason: format!("mask domain must be 2..=63 bits, got {domain_bits}"),
            });
        }
        if ones == 0 || ones >= domain_bits {
            return Err(BuildError::InvalidConfig {
                reason: format!(
                    "bm1 must have between 1 and {} one-bits within a {domain_bits}-bit \
                     domain, got {ones}",
                    domain_bits - 1
                ),
            });
        }
        // Evenly spaced positions: bit ⌊j·domain/ones⌋ for j in 0..ones.
        let mut bm1 = 0u64;
        for j in 0..ones {
            bm1 |= 1u64 << ((u64::from(j) * u64::from(domain_bits)) / u64::from(ones));
        }
        debug_assert_eq!(bm1.count_ones(), ones);
        Ok(Self { bm1, domain_bits })
    }

    /// Builds a pair from an explicit `bm1`; `bm2` is derived as its
    /// complement within the domain, enforcing Theorem 1 by construction.
    ///
    /// # Errors
    ///
    /// Returns an error when `bm1` has bits outside the domain, is zero,
    /// or covers the whole domain.
    pub fn from_bm1(bm1: u64, domain_bits: u32) -> Result<Self, BuildError> {
        if !(2..=63).contains(&domain_bits) {
            return Err(BuildError::InvalidConfig {
                reason: format!("mask domain must be 2..=63 bits, got {domain_bits}"),
            });
        }
        let domain = (1u64 << domain_bits) - 1;
        if bm1 & !domain != 0 {
            return Err(BuildError::InvalidConfig {
                reason: format!("bm1 {bm1:#x} has bits outside the {domain_bits}-bit domain"),
            });
        }
        if bm1 == 0 || bm1 == domain {
            return Err(BuildError::InvalidConfig {
                reason: "bm1 must be neither empty nor the full domain".into(),
            });
        }
        Ok(Self { bm1, domain_bits })
    }

    /// The first bitmask.
    #[inline]
    pub fn bm1(&self) -> u64 {
        self.bm1
    }

    /// The second bitmask, always `¬bm1` within the domain (Theorem 1).
    #[inline]
    pub fn bm2(&self) -> u64 {
        !self.bm1 & self.domain_mask()
    }

    /// Width of the mask domain in bits.
    #[inline]
    pub fn domain_bits(&self) -> u32 {
        self.domain_bits
    }

    /// All-ones mask over the domain.
    #[inline]
    pub fn domain_mask(&self) -> u64 {
        (1u64 << self.domain_bits) - 1
    }

    /// Number of one-bits in `bm1` (the paper's `i` in `IVCF_i`).
    #[inline]
    pub fn ones(&self) -> u32 {
        self.bm1.count_ones()
    }

    /// The paper's Equ. 8: probability that a uniformly random fingerprint
    /// hash yields four *distinct* candidate buckets.
    ///
    /// With `l` zeros and `f − l` ones in `bm1` over an `f`-bit domain:
    /// `P = 1 − (2^l + 2^(f−l) − 1) / 2^f`.
    pub fn expected_r(&self) -> f64 {
        let f = self.domain_bits as f64;
        let l = (self.domain_bits - self.ones()) as f64;
        1.0 - (2f64.powf(l) + 2f64.powf(f - l) - 1.0) / 2f64.powf(f)
    }

    /// Restricts the pair to a narrower domain (used when the bucket-index
    /// space is smaller than the fingerprint-hash domain, so that mask
    /// bits above the index range are not silently lost).
    ///
    /// Returns `None` when the restriction would leave either mask empty —
    /// the caller should fall back to CF-style two-candidate hashing.
    pub fn restricted_to(&self, index_bits: u32) -> Option<Self> {
        if index_bits >= self.domain_bits {
            return Some(*self);
        }
        let narrowed = self.bm1 & ((1u64 << index_bits) - 1);
        MaskPair::from_bm1(narrowed, index_bits).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complementarity_theorem1() {
        for ones in 1..14 {
            let m = MaskPair::with_ones(ones, 14).unwrap();
            assert_eq!(m.bm1() ^ m.bm2(), m.domain_mask(), "ones={ones}");
            assert_eq!(m.bm1() & m.bm2(), 0, "ones={ones}");
        }
    }

    #[test]
    fn rejects_degenerate_masks() {
        assert!(MaskPair::with_ones(0, 14).is_err());
        assert!(MaskPair::with_ones(14, 14).is_err());
        assert!(MaskPair::with_ones(1, 1).is_err());
        assert!(MaskPair::from_bm1(0, 8).is_err());
        assert!(MaskPair::from_bm1(0xff, 8).is_err());
        assert!(MaskPair::from_bm1(0x100, 8).is_err());
    }

    #[test]
    fn expected_r_matches_paper_f8_ladder() {
        // Section IV-A: "P ≈ {0.49, 0.73, 0.84, 0.87} when f = 8"
        // for i = 1..4 ones in bm1.
        let expect = [0.49, 0.73, 0.84, 0.87];
        for (i, &e) in expect.iter().enumerate() {
            let p = MaskPair::with_ones(i as u32 + 1, 8).unwrap().expected_r();
            assert!((p - e).abs() < 0.02, "i={} p={p} expected≈{e}", i + 1);
        }
    }

    #[test]
    fn expected_r_balanced_f14_is_0_9844() {
        let p = MaskPair::balanced(14).unwrap().expected_r();
        assert!((p - 0.98444).abs() < 1e-4, "got {p}");
    }

    #[test]
    fn expected_r_balanced_f16_is_0_9922() {
        // Section IV-A: "f = 16 and l = 8, then P ≈ 0.9922".
        let p = MaskPair::balanced(16).unwrap().expected_r();
        assert!((p - 0.9922).abs() < 1e-3, "got {p}");
    }

    #[test]
    fn expected_r_monotone_in_balance() {
        // For fixed f, moving the ones-count toward f/2 increases P.
        let f = 14;
        let mut last = 0.0;
        for ones in 1..=7 {
            let p = MaskPair::with_ones(ones, f).unwrap().expected_r();
            assert!(p > last, "P must increase toward the balanced split");
            last = p;
        }
    }

    #[test]
    fn interleaved_spreads_ones() {
        let m = MaskPair::interleaved(7, 14).unwrap();
        assert_eq!(m.ones(), 7);
        assert_eq!(m.bm1() & m.bm2(), 0);
        assert_eq!(m.bm1() | m.bm2(), m.domain_mask());
        // Balanced interleave over 14 bits is the alternating pattern.
        assert_eq!(m.bm1(), 0b01_0101_0101_0101);
    }

    #[test]
    fn interleaved_r_equals_low_ones_r() {
        // Equ. 8 depends on the popcount only.
        for ones in 1..14 {
            let low = MaskPair::with_ones(ones, 14).unwrap().expected_r();
            let spread = MaskPair::interleaved(ones, 14).unwrap().expected_r();
            assert!((low - spread).abs() < 1e-12, "ones={ones}");
        }
    }

    #[test]
    fn interleaved_rejects_degenerate() {
        assert!(MaskPair::interleaved(0, 14).is_err());
        assert!(MaskPair::interleaved(14, 14).is_err());
        assert!(MaskPair::interleaved(1, 64).is_err());
    }

    #[test]
    fn restriction_keeps_complementarity() {
        let m = MaskPair::balanced(14).unwrap();
        let r = m.restricted_to(8).unwrap();
        assert_eq!(r.domain_bits(), 8);
        assert_eq!(r.bm1() ^ r.bm2(), r.domain_mask());
    }

    #[test]
    fn restriction_can_fail_to_cf() {
        // bm1 occupies only high bits: restricting to the low bits empties it.
        let m = MaskPair::from_bm1(0x3f80, 14).unwrap(); // ones in bits 7..14
        assert!(m.restricted_to(7).is_none());
    }

    #[test]
    fn restriction_is_identity_when_domain_fits() {
        let m = MaskPair::balanced(14).unwrap();
        assert_eq!(m.restricted_to(20), Some(m));
    }
}
