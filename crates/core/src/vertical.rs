//! Candidate-bucket derivation: the vertical hashing kernel.

use crate::bitmask::MaskPair;

/// The (up to four) candidate buckets of an item, in the paper's order
/// `B1, B2, B3, B4` (Equ. 3). Entries may coincide when the masked
/// fragments of `hash(η)` are zero — the paper's "two candidate buckets"
/// degenerate case; lookup deliberately probes all four entries anyway,
/// duplicates included, matching the constant-overhead lookup behaviour
/// reported in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidates {
    /// `[B1, B2, B3, B4]` as bucket indices.
    pub buckets: [usize; 4],
}

impl Candidates {
    /// Number of *distinct* candidate buckets (4, or 2 in the degenerate
    /// case, or 1 when `hash(η)` reduces to zero in the index domain).
    pub fn distinct(&self) -> usize {
        let mut seen = [usize::MAX; 4];
        let mut n = 0;
        for &b in &self.buckets {
            if !seen[..n].contains(&b) {
                seen[n] = b;
                n += 1;
            }
        }
        n
    }

    /// Whether `bucket` is one of the candidates.
    pub fn contains(&self, bucket: usize) -> bool {
        self.buckets.contains(&bucket)
    }

    /// Iterates the four entries (duplicates included).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.buckets.iter().copied()
    }

    /// The smallest candidate bucket index — a member-independent
    /// representative of the coset. Theorem 1 closure means every member
    /// bucket yields the same candidate *set*, so the minimum is the same
    /// no matter which member it is computed from; pairing it with the
    /// fingerprint gives a canonical 64-bit key derivable from stored
    /// bits alone (the freeze-boundary representation used by
    /// `TieredFilter`).
    pub fn canonical_low(&self) -> usize {
        let mut low = self.buckets[0];
        for &b in &self.buckets {
            if b < low {
                low = b;
            }
        }
        low
    }
}

/// Precomputed vertical-hashing parameters for a concrete table geometry:
/// the three XOR offset masks, already restricted to the bucket-index
/// range.
///
/// # Examples
///
/// ```
/// use vcf_core::{MaskPair, VerticalParams};
///
/// let masks = MaskPair::balanced(14)?;
/// let params = VerticalParams::new(masks, 1 << 16);
/// let cands = params.candidates(3, 0xabcd);
/// // Theorem 1: the candidate set is closed under relocation.
/// for &b in &cands.buckets {
///     assert_eq!(params.candidates(b, 0xabcd).distinct(), cands.distinct());
/// }
/// # Ok::<(), vcf_traits::BuildError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerticalParams {
    mask1: u64,
    mask2: u64,
    index_mask: u64,
}

impl VerticalParams {
    /// Builds parameters for a table of `buckets` buckets (must be a power
    /// of two; validated by the filter constructors) using `masks`.
    ///
    /// When the mask domain is wider than the index range the masks are
    /// restricted to the index bits (see [`MaskPair::restricted_to`]); if
    /// the restriction degenerates, the filter behaves like CF for every
    /// item (`r = 0`), which is the paper's own fallback semantics.
    pub fn new(masks: MaskPair, buckets: usize) -> Self {
        debug_assert!(buckets.is_power_of_two());
        let index_bits = buckets.trailing_zeros();
        let index_mask = buckets as u64 - 1;
        match masks.restricted_to(index_bits.max(2)) {
            Some(m) => Self {
                mask1: m.bm1() & index_mask,
                mask2: m.bm2() & index_mask,
                index_mask,
            },
            // Degenerate restriction: fragment 1 vanished; fall back to
            // CF-style hashing (B2 = B3 = B1, B4 = the CF alternate).
            None => Self {
                mask1: 0,
                mask2: index_mask,
                index_mask,
            },
        }
    }

    /// All-ones mask over the bucket-index bits.
    #[inline]
    pub fn index_mask(&self) -> u64 {
        self.index_mask
    }

    /// Effective first fragment mask (within index bits).
    #[inline]
    pub fn mask1(&self) -> u64 {
        self.mask1
    }

    /// Effective second fragment mask (within index bits).
    #[inline]
    pub fn mask2(&self) -> u64 {
        self.mask2
    }

    /// The three XOR offsets for a given fingerprint hash: fragments
    /// `hash(η)∧bm1`, `hash(η)∧bm2` and the full `hash(η)`, all reduced to
    /// the index domain. `o1 ^ o2 == o_full` always holds (complementary
    /// masks), which is what makes the candidate set closed.
    #[inline]
    pub fn offsets(&self, fingerprint_hash: u64) -> (u64, u64, u64) {
        let o1 = fingerprint_hash & self.mask1;
        let o2 = fingerprint_hash & self.mask2;
        (o1, o2, o1 | o2)
    }

    /// Equ. 3: the four candidate buckets of an item whose primary bucket
    /// is `b1` and whose fingerprint hashes to `fingerprint_hash`.
    #[inline]
    pub fn candidates(&self, b1: usize, fingerprint_hash: u64) -> Candidates {
        let (o1, o2, of) = self.offsets(fingerprint_hash);
        let b1 = b1 & self.index_mask as usize;
        Candidates {
            buckets: [b1, b1 ^ o1 as usize, b1 ^ o2 as usize, b1 ^ of as usize],
        }
    }

    /// Equ. 4: the three alternate buckets reachable from `current` for a
    /// resident fingerprint hashing to `fingerprint_hash` — the relocation
    /// rule used by the eviction loop. By Theorem 1 this reaches exactly
    /// the other members of the item's candidate set.
    #[inline]
    pub fn alternates(&self, current: usize, fingerprint_hash: u64) -> [usize; 3] {
        let (o1, o2, of) = self.offsets(fingerprint_hash);
        [
            current ^ o1 as usize,
            current ^ o2 as usize,
            current ^ of as usize,
        ]
    }

    /// CF-compatible two-candidate alternate: `current ⊕ hash(η)` reduced
    /// to the index domain (Equ. 1). Used by DVCF's two-candidate branch.
    #[inline]
    pub fn cf_alternate(&self, current: usize, fingerprint_hash: u64) -> usize {
        current ^ (fingerprint_hash & self.index_mask) as usize
    }
}

/// Equ. 6: candidate bucket `B_e = B_1 ⊕ (hash(η) ∧ bm_e)` of the
/// generalized k-VCF, reduced to the index domain. `mask` is the
/// per-candidate fragment mask `bm_e` (the zero mask yields `b1`
/// itself).
///
/// This and [`masked_relocate`] are the *only* places k-VCF bucket
/// arithmetic may live: Theorem 2 extends Theorem 1's coset-closure
/// argument to arbitrary mask families, and the proof obligation —
/// relocation never leaves the candidate set — holds exactly because
/// every derivation routes through these two expressions.
#[inline]
#[must_use]
pub fn masked_candidate(b1: usize, fingerprint_hash: u64, mask: u64, index_mask: u64) -> usize {
    b1 ^ (fingerprint_hash & mask & index_mask) as usize
}

/// Equ. 7: relocation from candidate `g` (bucket `bg`) to candidate `e`
/// of the generalized k-VCF: `B_e = B_g ⊕ ((hash(η) ∧ bm_g) ⊕
/// (hash(η) ∧ bm_e))`, reduced to the index domain.
///
/// By Theorem 2, composing this with [`masked_candidate`] satisfies
/// `masked_relocate(masked_candidate(b1, h, bm_g, m), h, bm_g, bm_e, m)
/// == masked_candidate(b1, h, bm_e, m)` — relocation is closed over the
/// candidate coset.
#[inline]
#[must_use]
pub fn masked_relocate(
    bg: usize,
    fingerprint_hash: u64,
    mask_g: u64,
    mask_e: u64,
    index_mask: u64,
) -> usize {
    bg ^ (((fingerprint_hash & mask_g) ^ (fingerprint_hash & mask_e)) & index_mask) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcf_hash::mix64;

    fn params() -> VerticalParams {
        VerticalParams::new(MaskPair::balanced(14).unwrap(), 1 << 16)
    }

    #[test]
    fn candidate_zero_offset_collapse() {
        let p = params();
        // hash(η) = 0 in the index domain: all four candidates coincide.
        let c = p.candidates(123, 0);
        assert_eq!(c.distinct(), 1);
        assert!(c.iter().all(|b| b == 123));
    }

    #[test]
    fn degenerate_two_candidates_when_one_fragment_zero() {
        let p = params();
        // Fingerprint hash with bits only in mask2's range.
        let h = p.mask2();
        assert_ne!(h, 0);
        let c = p.candidates(0, h);
        assert_eq!(
            c.distinct(),
            2,
            "only B1 and B1^h should be distinct: {c:?}"
        );
    }

    #[test]
    fn theorem1_closure_under_relocation() {
        let p = params();
        for i in 0..2000u64 {
            let h = mix64(i);
            let set = p.candidates(777, h);
            let mut sorted: Vec<usize> = set.buckets.to_vec();
            sorted.sort_unstable();
            for &b in &set.buckets {
                // From any member, the alternates plus the member itself
                // must reproduce the same candidate set.
                let mut reachable: Vec<usize> = p.alternates(b, h).to_vec();
                reachable.push(b);
                reachable.sort_unstable();
                assert_eq!(reachable, sorted, "closure violated at h={h:#x} b={b}");
            }
        }
    }

    #[test]
    fn offsets_satisfy_xor_identity() {
        let p = params();
        for i in 0..1000u64 {
            let h = mix64(i).wrapping_mul(0x9e37);
            let (o1, o2, of) = p.offsets(h);
            assert_eq!(o1 ^ o2, of);
            assert_eq!(o1 & o2, 0, "fragments must be disjoint");
        }
    }

    #[test]
    fn candidates_stay_in_range() {
        let buckets = 1 << 10;
        let p = VerticalParams::new(MaskPair::balanced(14).unwrap(), buckets);
        for i in 0..5000u64 {
            let h = mix64(i);
            for b in p.candidates((i as usize) % buckets, h).iter() {
                assert!(b < buckets);
            }
        }
    }

    #[test]
    fn four_distinct_frequency_matches_expected_r() {
        // Empirical P(4 distinct candidates) over random fingerprint
        // hashes must match Equ. 8 computed on the *effective* domain.
        let buckets = 1usize << 16; // index_bits=16 > domain 14: no loss
        let masks = MaskPair::balanced(14).unwrap();
        let p = VerticalParams::new(masks, buckets);
        let trials = 200_000u64;
        let mut four = 0u64;
        for i in 0..trials {
            // restrict to the 14-bit domain like a real fingerprint hash
            let h = mix64(i);
            if p.candidates(0, h).distinct() == 4 {
                four += 1;
            }
        }
        let measured = four as f64 / trials as f64;
        let expected = masks.expected_r();
        assert!(
            (measured - expected).abs() < 0.01,
            "measured {measured}, Equ.8 gives {expected}"
        );
    }

    #[test]
    fn small_table_falls_back_gracefully() {
        // 4 buckets → 2 index bits; balanced 14-bit masks restrict to 2 bits.
        let p = VerticalParams::new(MaskPair::balanced(14).unwrap(), 4);
        for h in 0..64u64 {
            for b in p.candidates(1, h).iter() {
                assert!(b < 4);
            }
        }
    }

    #[test]
    fn cf_alternate_is_involution() {
        let p = params();
        for i in 0..100u64 {
            let h = mix64(i);
            let alt = p.cf_alternate(42, h);
            assert_eq!(p.cf_alternate(alt, h), 42);
        }
    }

    #[test]
    fn theorem2_masked_relocation_closure() {
        // Theorem 2: for any mask family {bm_e}, relocating from
        // candidate g to candidate e lands exactly on masked_candidate's
        // bucket for e — the generalized coset is closed.
        let index_mask = (1u64 << 12) - 1;
        let masks = [0u64, 0x0f3, 0xa0c, 0x5a5, 0xfff];
        for i in 0..2000u64 {
            let h = mix64(i);
            let b1 = (mix64(i ^ 0xdead) & index_mask) as usize;
            for g in 0..masks.len() {
                let bg = masked_candidate(b1, h, masks[g], index_mask);
                for e in 0..masks.len() {
                    let via_relocate = masked_relocate(bg, h, masks[g], masks[e], index_mask);
                    let direct = masked_candidate(b1, h, masks[e], index_mask);
                    assert_eq!(via_relocate, direct, "h={h:#x} g={g} e={e}");
                }
            }
        }
    }

    #[test]
    fn masked_candidate_generalizes_equ3() {
        // With the pair masks (0, bm1, bm2, bm1|bm2) the generalized
        // Equ. 6 reproduces the four Equ. 3 candidates.
        let p = params();
        let index_mask = (1u64 << 16) - 1;
        for i in 0..500u64 {
            let h = mix64(i);
            let c = p.candidates(77, h);
            let family = [0u64, p.mask1(), p.mask2(), p.mask1() | p.mask2()];
            for (e, &m) in family.iter().enumerate() {
                assert_eq!(c.buckets[e], masked_candidate(77, h, m, index_mask));
            }
        }
    }

    #[test]
    fn distinct_counts_duplicates_correctly() {
        let c = Candidates {
            buckets: [1, 1, 2, 2],
        };
        assert_eq!(c.distinct(), 2);
        let c = Candidates {
            buckets: [5, 5, 5, 5],
        };
        assert_eq!(c.distinct(), 1);
        let c = Candidates {
            buckets: [1, 2, 3, 4],
        };
        assert_eq!(c.distinct(), 4);
    }
}
