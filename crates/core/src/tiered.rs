//! Hot/cold tiering: one mutable [`ScalableVcf`] hot tier plus N
//! immutable frozen generations behind the plain [`Filter`] API.
//!
//! VCF earns its insertion-friendliness on churn-heavy hot data; a
//! generation that has stopped mutating pays cuckoo rent (partial
//! occupancy, eviction headroom) forever. [`TieredFilter`] closes that
//! gap: inserts and deletes hit the hot tier only, lookups fan across
//! all generations newest-first, and an explicit
//! [`rotate`](TieredFilter::rotate) freezes the current hot tier into an
//! immutable generation — typically a binary fuse filter from
//! `vcf-sketches`, ~25% smaller at the same error rate.
//!
//! The freeze crosses the partial-key boundary: the hot tier exports
//! **canonical coset keys** derived from its stored bits alone
//! ([`ScalableVcf::canonical_keys`]), so rotation never needs the
//! original items. The drain is *budgeted* exactly like segment
//! migration: each unit collects one source bucket or runs one bounded
//! construction chunk, amortized across serving operations (or driven
//! explicitly with [`rotate_step`](TieredFilter::rotate_step)), and the
//! rotating tier keeps answering lookups until its frozen replacement is
//! installed — zero false negatives at every intermediate step.

use crate::config::CuckooConfig;
use crate::scalable::ScalableVcf;
use vcf_traits::{
    BuildError, Filter, FrozenBuilder, FrozenSet, InsertError, LifecycleFilter, Stats,
};

/// Default rotation work units amortized onto each insert (same spirit
/// as the migration budget: one bounded unit per insert drains a
/// rotation faster than the hot tier refills).
const DEFAULT_ROTATE_BUDGET: usize = 1;

/// Work counters for the rotation machinery — separate from
/// [`Filter::stats`], which stays an exact account of the *hot tier's*
/// hash/probe work (`hashes = 2·inserts + kicks` is preserved because
/// rotation work never touches the hot tier's counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RotationStats {
    /// Rotations begun via [`TieredFilter::rotate`].
    pub rotations_started: u64,
    /// Rotations whose frozen generation has been installed.
    pub rotations_completed: u64,
    /// Source buckets drained into a frozen builder.
    pub buckets_collected: u64,
    /// Bounded construction chunks executed.
    pub build_units: u64,
    /// Peel-failure restarts observed across all rotations (a restart
    /// re-collects from the intact source under a fresh seed).
    pub restarts: u64,
    /// Work units performed by the most recent operation that advanced
    /// a rotation (insert-amortized or explicit) — the bounded-work
    /// observable the lifecycle tests assert on.
    pub last_op_units: u64,
}

/// An in-flight rotation: the frozen-out hot tier (still serving
/// lookups) plus the staged builder draining it.
struct Rotation<G: FrozenSet> {
    /// The former hot tier. Intact — and probed by every lookup — until
    /// the frozen generation is installed, so rotation never introduces
    /// false negatives.
    source: ScalableVcf,
    builder: G::Builder,
    /// Collect cursor: next segment to drain.
    segment: usize,
    /// Collect cursor: next bucket within `segment`.
    bucket: usize,
    /// `true` while source buckets are still being collected; `false`
    /// once the builder is sealed and construction chunks remain.
    collecting: bool,
    /// Reused per-bucket key scratch.
    scratch: Vec<u64>,
}

/// A [`Filter`] with a hot/cold lifecycle: one mutable [`ScalableVcf`]
/// hot tier plus N immutable frozen generations of type `G`.
///
/// The concrete frozen representation is generic so the façade lives in
/// `vcf-core` without depending on `vcf-sketches`; the root crate
/// exports `TieredVcf = TieredFilter<BinaryFuse8>` as the working
/// configuration.
///
/// # Lookup order
///
/// `contains`/`contains_batch` consult the hot tier, then (mid-rotation)
/// the rotating source, then frozen generations newest-first, stopping
/// at the first hit — recently-written keys resolve without ever
/// touching cold lanes. Batched lookups group the still-unresolved
/// items per generation so each tier sees one batch, mirroring the
/// shard router's group-dispatch shape.
///
/// # Deletion semantics
///
/// Frozen generations are append-frozen: [`Filter::delete`] removes
/// keys still in the hot tier and returns `false` for keys that have
/// been frozen — the lifecycle analogue of expiring a cold partition
/// rather than editing it.
pub struct TieredFilter<G: FrozenSet> {
    hot: ScalableVcf,
    config: CuckooConfig,
    /// Frozen generations, oldest first (lookups iterate in reverse).
    frozen: Vec<G>,
    rotation: Option<Rotation<G>>,
    rotate_budget: usize,
    freeze_seed: u64,
    stats: RotationStats,
}

impl<G: FrozenSet> TieredFilter<G> {
    /// Creates an empty tiered filter whose hot tier (and every future
    /// hot tier installed by [`rotate`](Self::rotate)) uses `config`.
    ///
    /// # Errors
    ///
    /// Propagates [`ScalableVcf::new`] geometry errors.
    pub fn new(config: CuckooConfig) -> Result<Self, BuildError> {
        let hot = ScalableVcf::new(config)?;
        Ok(Self {
            hot,
            config,
            frozen: Vec::new(),
            rotation: None,
            rotate_budget: DEFAULT_ROTATE_BUDGET,
            freeze_seed: config.seed,
            stats: RotationStats::default(),
        })
    }

    /// The mutable hot tier (for inspection; mutating it directly is
    /// fine — it is an ordinary filter).
    pub fn hot(&self) -> &ScalableVcf {
        &self.hot
    }

    /// Rotation work counters.
    pub fn rotation_stats(&self) -> RotationStats {
        self.stats
    }

    /// Rotation work units amortized onto each insert (0 disables
    /// amortization; [`rotate_step`](Self::rotate_step) still works).
    pub fn rotate_budget(&self) -> usize {
        self.rotate_budget
    }

    /// Sets the per-insert rotation budget in work units.
    pub fn set_rotate_budget(&mut self, units_per_insert: usize) {
        self.rotate_budget = units_per_insert;
    }

    /// Heap bytes across all tiers (hot tables + rotating source +
    /// frozen lane arrays).
    pub fn storage_bytes(&self) -> usize {
        let rotating = self
            .rotation
            .as_ref()
            .map_or(0, |r| r.source.storage_bytes());
        self.hot.storage_bytes() + rotating + self.frozen_storage_bytes()
    }

    /// Drives an in-flight rotation by one unit: collect one source
    /// bucket (or seal the builder), or run one construction chunk —
    /// installing the frozen generation when construction completes.
    /// Returns `false` when no rotation is in flight.
    fn advance_one(&mut self) -> bool {
        let Some(rot) = self.rotation.as_mut() else {
            return false;
        };
        if rot.collecting {
            let buckets = rot.source.segment_buckets(rot.segment);
            if buckets == 0 {
                // lint: allow(panic-reachability) — dyn FrozenBuilder dispatch: the impl lives in vcf-sketches, dependency-inverted above this crate, and its build path is panic-checked by that crate's tests
                rot.builder.seal();
                rot.collecting = false;
            } else {
                rot.scratch.clear();
                rot.source
                    .bucket_canonical_keys(rot.segment, rot.bucket, &mut rot.scratch);
                for &key in &rot.scratch {
                    rot.builder.push(key);
                }
                rot.bucket += 1;
                if rot.bucket >= buckets {
                    rot.bucket = 0;
                    rot.segment += 1;
                }
                self.stats.buckets_collected += 1;
            }
            return true;
        }
        // lint: allow(panic-reachability) — dyn FrozenBuilder dispatch: the impl lives in vcf-sketches, dependency-inverted above this crate, and its build path is panic-checked by that crate's tests
        let did = rot.builder.step(1);
        self.stats.build_units += did as u64;
        // lint: allow(panic-reachability) — dyn FrozenBuilder dispatch: the impl lives in vcf-sketches, dependency-inverted above this crate, and its build path is panic-checked by that crate's tests
        if rot.builder.backlog() == 0 {
            if let Some(rot) = self.rotation.take() {
                self.install(rot);
            }
            return true;
        }
        did > 0
    }

    /// Finalizes a drained rotation: installs the frozen generation and
    /// drops the source. A `finish` failure (possible only if the
    /// builder's backlog estimate lied — cryptographically improbable
    /// for the fuse builder) recovers without panicking: the rotation
    /// restarts from the still-intact source under a fresh seed.
    fn install(&mut self, rot: Rotation<G>) {
        let Rotation {
            source,
            builder,
            scratch,
            ..
        } = rot;
        match builder.finish() {
            Ok(generation) => {
                self.frozen.push(generation);
                self.stats.rotations_completed += 1;
            }
            Err(_) => {
                self.stats.restarts += 1;
                self.freeze_seed = self.freeze_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                self.rotation = Some(Rotation {
                    source,
                    builder: G::begin(self.freeze_seed),
                    segment: 0,
                    bucket: 0,
                    collecting: true,
                    scratch,
                });
            }
        }
    }

    /// Runs up to `units` rotation work units, recording the count in
    /// [`RotationStats::last_op_units`].
    fn advance(&mut self, units: usize) -> usize {
        let mut done = 0;
        while done < units && self.advance_one() {
            done += 1;
        }
        self.stats.last_op_units = done as u64;
        done
    }

    /// Canonical coset key of `item` for probing frozen generations.
    /// Hot tiers across rotations share one base geometry (the config
    /// is stored), so the derivation is stable for the filter's life.
    fn frozen_key(&self, item: &[u8]) -> u64 {
        self.hot.canonical_key(item)
    }
}

impl<G: FrozenSet> Filter for TieredFilter<G> {
    // lint: hot-path
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        let result = self.hot.insert(item);
        self.advance(self.rotate_budget);
        result
    }

    // lint: hot-path
    fn insert_batch(&mut self, items: &[&[u8]]) -> Vec<Result<(), InsertError>> {
        let results = self.hot.insert_batch(items);
        self.advance(self.rotate_budget.saturating_mul(items.len()));
        results
    }

    fn build_from_iter(
        &mut self,
        items: &mut dyn Iterator<Item = &[u8]>,
    ) -> Vec<Result<(), InsertError>> {
        let results = self.hot.build_from_iter(items);
        self.advance(self.rotate_budget.saturating_mul(results.len()));
        results
    }

    // lint: hot-path
    fn contains(&self, item: &[u8]) -> bool {
        if self.hot.contains(item) {
            return true;
        }
        if let Some(rot) = &self.rotation {
            if rot.source.contains(item) {
                return true;
            }
        }
        if self.frozen.is_empty() {
            return false;
        }
        let key = self.frozen_key(item);
        self.frozen.iter().rev().any(|g| g.contains_key(key))
    }

    // lint: hot-path
    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        let mut out = self.hot.contains_batch(items);
        if let Some(rot) = &self.rotation {
            let pending: Vec<usize> = (0..items.len()).filter(|&i| !out[i]).collect();
            if !pending.is_empty() {
                let sub: Vec<&[u8]> = pending.iter().map(|&i| items[i]).collect();
                for (&i, hit) in pending.iter().zip(rot.source.contains_batch(&sub)) {
                    // `pending` indices come from `0..items.len()`.
                    debug_assert!(i < out.len());
                    out[i] = hit;
                }
            }
        }
        if self.frozen.is_empty() {
            return out;
        }
        // Group the still-unresolved items into one batch per frozen
        // generation, newest first; each hit shrinks the next batch.
        let mut pending: Vec<usize> = (0..items.len()).filter(|&i| !out[i]).collect();
        if pending.is_empty() {
            return out;
        }
        let mut keys: Vec<u64> = pending.iter().map(|&i| self.frozen_key(items[i])).collect();
        for generation in self.frozen.iter().rev() {
            let hits = generation.contains_keys(&keys);
            let mut next_pending = Vec::with_capacity(pending.len());
            let mut next_keys = Vec::with_capacity(keys.len());
            for (slot, &i) in pending.iter().enumerate() {
                debug_assert!(slot < hits.len() && i < out.len() && slot < keys.len());
                if hits[slot] {
                    out[i] = true;
                } else {
                    next_pending.push(i);
                    next_keys.push(keys[slot]);
                }
            }
            pending = next_pending;
            keys = next_keys;
            if pending.is_empty() {
                break;
            }
        }
        out
    }

    // lint: hot-path
    fn delete(&mut self, item: &[u8]) -> bool {
        self.hot.delete(item)
    }

    fn len(&self) -> usize {
        let rotating = self.rotation.as_ref().map_or(0, |r| r.source.len());
        let frozen: usize = self.frozen.iter().map(FrozenSet::len).sum();
        self.hot.len() + rotating + frozen
    }

    fn capacity(&self) -> usize {
        // Frozen generations are immutable and exactly full; the
        // rotating source no longer accepts inserts.
        let rotating = self.rotation.as_ref().map_or(0, |r| r.source.len());
        let frozen: usize = self.frozen.iter().map(FrozenSet::len).sum();
        self.hot.capacity() + rotating + frozen
    }

    fn stats(&self) -> Stats {
        // Hot tier pass-through: rotation work never touches these
        // counters, so `hashes = 2·inserts + kicks` stays exact.
        self.hot.stats()
    }

    fn reset_stats(&mut self) {
        self.hot.reset_stats();
    }

    fn name(&self) -> String {
        format!("Tiered[{} | {} frozen]", self.hot.name(), self.frozen.len())
    }
}

impl<G: FrozenSet> LifecycleFilter for TieredFilter<G> {
    fn rotate(&mut self) -> bool {
        if self.rotation.is_some() || self.hot.len() == 0 {
            return false;
        }
        let Ok(fresh) = ScalableVcf::new(self.config) else {
            return false; // config was valid at construction; defensive
        };
        let source = core::mem::replace(&mut self.hot, fresh);
        self.freeze_seed = self.freeze_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.rotation = Some(Rotation {
            source,
            builder: G::begin(self.freeze_seed),
            segment: 0,
            bucket: 0,
            collecting: true,
            scratch: Vec::new(),
        });
        self.stats.rotations_started += 1;
        true
    }

    fn rotate_step(&mut self, units: usize) -> usize {
        self.advance(units)
    }

    fn rotation_backlog(&self) -> usize {
        let Some(rot) = &self.rotation else {
            return 0;
        };
        let mut remaining = rot.builder.backlog();
        if rot.collecting {
            remaining += 1; // the seal unit
            let mut segment = rot.segment;
            let mut from = rot.bucket;
            loop {
                let buckets = rot.source.segment_buckets(segment);
                if buckets == 0 {
                    break;
                }
                remaining += buckets.saturating_sub(from);
                from = 0;
                segment += 1;
            }
        }
        remaining.max(1)
    }

    fn generations(&self) -> usize {
        self.frozen.len()
    }

    fn generation_lens(&self) -> Vec<usize> {
        self.frozen.iter().rev().map(FrozenSet::len).collect()
    }

    fn frozen_storage_bytes(&self) -> usize {
        self.frozen.iter().map(FrozenSet::storage_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// A trivially correct frozen set for exercising the façade without
    /// depending on `vcf-sketches`: an exact `HashSet` behind the
    /// incremental-builder surface (three fake construction chunks).
    struct ExactSet {
        keys: HashSet<u64>,
    }

    struct ExactBuilder {
        keys: HashSet<u64>,
        sealed: bool,
        chunks_left: usize,
    }

    impl FrozenSet for ExactSet {
        type Builder = ExactBuilder;

        fn begin(_seed: u64) -> ExactBuilder {
            ExactBuilder {
                keys: HashSet::new(),
                sealed: false,
                chunks_left: 3,
            }
        }

        fn contains_key(&self, key: u64) -> bool {
            self.keys.contains(&key)
        }

        fn len(&self) -> usize {
            self.keys.len()
        }

        fn storage_bytes(&self) -> usize {
            self.keys.len() * 8
        }

        fn fingerprint_bits(&self) -> u32 {
            64
        }
    }

    impl FrozenBuilder for ExactBuilder {
        type Set = ExactSet;

        fn push(&mut self, key: u64) {
            if !self.sealed {
                self.keys.insert(key);
            }
        }

        fn seal(&mut self) {
            self.sealed = true;
        }

        fn step(&mut self, units: usize) -> usize {
            if !self.sealed {
                return 0;
            }
            let did = units.min(self.chunks_left);
            self.chunks_left -= did;
            did
        }

        fn backlog(&self) -> usize {
            if self.sealed {
                self.chunks_left
            } else {
                self.chunks_left + 1
            }
        }

        fn staged(&self) -> usize {
            self.keys.len()
        }

        fn finish(self) -> Result<ExactSet, BuildError> {
            if self.sealed && self.chunks_left == 0 {
                Ok(ExactSet { keys: self.keys })
            } else {
                Err(BuildError::InvalidConfig {
                    reason: "exact-set build incomplete".into(),
                })
            }
        }
    }

    fn tiered() -> TieredFilter<ExactSet> {
        TieredFilter::new(CuckooConfig::new(1 << 8).with_seed(42)).unwrap()
    }

    fn key(i: u64) -> Vec<u8> {
        format!("tiered-{i}").into_bytes()
    }

    #[test]
    fn rotation_freezes_and_keys_stay_found() {
        let mut f = tiered();
        for i in 0..300 {
            f.insert(&key(i)).unwrap();
        }
        assert!(f.rotate());
        assert!(!f.rotate(), "second rotate while in flight is a no-op");
        while f.rotation_backlog() > 0 {
            assert!(f.rotate_step(8) > 0);
            for i in (0..300).step_by(37) {
                assert!(f.contains(&key(i)), "key {i} lost mid-rotation");
            }
        }
        assert_eq!(f.generations(), 1);
        for i in 0..300 {
            assert!(f.contains(&key(i)), "key {i} lost after rotation");
        }
        assert_eq!(f.hot().len(), 0);
    }

    #[test]
    fn empty_hot_tier_does_not_rotate() {
        let mut f = tiered();
        assert!(!f.rotate());
        f.insert(&key(1)).unwrap();
        assert!(f.delete(&key(1)));
        assert!(!f.rotate());
    }

    #[test]
    fn inserts_amortize_the_rotation() {
        let mut f = tiered();
        for i in 0..200 {
            f.insert(&key(i)).unwrap();
        }
        assert!(f.rotate());
        let backlog = f.rotation_backlog();
        assert!(backlog > 0);
        // Every insert performs at most `rotate_budget` units.
        let mut inserts = 0;
        while f.rotation_backlog() > 0 {
            f.insert(&key(10_000 + inserts)).unwrap();
            assert!(f.rotation_stats().last_op_units <= f.rotate_budget() as u64);
            inserts += 1;
            assert!(inserts < 10_000, "rotation never drained");
        }
        assert_eq!(f.generations(), 1);
        for i in 0..200 {
            assert!(f.contains(&key(i)));
        }
        for i in 0..inserts {
            assert!(f.contains(&key(10_000 + i)));
        }
    }

    #[test]
    fn deletes_only_touch_the_hot_tier() {
        let mut f = tiered();
        for i in 0..100 {
            f.insert(&key(i)).unwrap();
        }
        assert!(f.rotate());
        while f.rotation_backlog() > 0 {
            f.rotate_step(16);
        }
        // Frozen keys are append-frozen: delete is a no-op miss…
        assert!(!f.delete(&key(5)));
        assert!(f.contains(&key(5)));
        // …while hot keys delete normally.
        f.insert(&key(500)).unwrap();
        assert!(f.delete(&key(500)));
        assert!(!f.contains(&key(500)));
    }

    #[test]
    fn contains_batch_matches_serial_across_generations() {
        let mut f = tiered();
        for round in 0..3u64 {
            for i in 0..120 {
                f.insert(&key(round * 1000 + i)).unwrap();
            }
            assert!(f.rotate());
            while f.rotation_backlog() > 0 {
                f.rotate_step(32);
            }
        }
        for i in 0..60 {
            f.insert(&key(9000 + i)).unwrap();
        }
        assert_eq!(f.generations(), 3);
        let probe: Vec<Vec<u8>> = (0..4000).map(|i| key(i * 7)).collect();
        let refs: Vec<&[u8]> = probe.iter().map(Vec::as_slice).collect();
        let batch = f.contains_batch(&refs);
        for (i, item) in refs.iter().enumerate() {
            assert_eq!(batch[i], f.contains(item), "probe {i} diverged");
        }
    }

    #[test]
    fn stats_stay_hot_tier_exact() {
        let mut f = tiered();
        for i in 0..150 {
            f.insert(&key(i)).unwrap();
        }
        assert!(f.rotate());
        // Rotation resets the observable stats surface to the fresh hot
        // tier; inserts from here on keep the exact identity.
        f.reset_stats();
        for i in 1000..1100 {
            f.insert(&key(i)).unwrap();
        }
        while f.rotation_backlog() > 0 {
            f.rotate_step(64);
        }
        let stats = f.stats();
        assert_eq!(
            stats.hash_computations,
            2 * stats.inserts.calls + stats.kicks,
            "hot-tier hash accounting must stay exact through rotation: {stats:?}"
        );
    }

    #[test]
    fn generation_metadata_is_newest_first() {
        let mut f = tiered();
        for i in 0..50 {
            f.insert(&key(i)).unwrap();
        }
        f.rotate();
        while f.rotation_backlog() > 0 {
            f.rotate_step(64);
        }
        for i in 0..80 {
            f.insert(&key(1000 + i)).unwrap();
        }
        f.rotate();
        while f.rotation_backlog() > 0 {
            f.rotate_step(64);
        }
        assert_eq!(f.generations(), 2);
        let lens = f.generation_lens();
        assert_eq!(lens.len(), 2);
        assert!(
            lens[0] >= lens[1],
            "newest (larger) generation first: {lens:?}"
        );
        assert!(f.frozen_storage_bytes() > 0);
        assert!(f.name().contains("2 frozen"));
    }

    #[test]
    fn len_spans_all_tiers() {
        let mut f = tiered();
        for i in 0..90 {
            f.insert(&key(i)).unwrap();
        }
        let before = f.len();
        // Freezing dedups to *distinct canonical keys* — items the hot
        // tier already cannot tell apart collapse into one frozen entry.
        let distinct = f.hot().canonical_keys().collect::<HashSet<_>>().len();
        assert!(distinct <= before);
        f.rotate();
        // Mid-rotation the keys live in the source, not the hot tier.
        assert_eq!(f.len(), before);
        while f.rotation_backlog() > 0 {
            f.rotate_step(16);
            assert!(
                f.len() == before || f.len() == distinct,
                "len mid-rotation is source-counted or frozen-counted"
            );
        }
        assert_eq!(f.len(), distinct);
    }
}
