//! Shared configuration for all cuckoo-family filters in this workspace.

use vcf_hash::HashKind;
use vcf_traits::BuildError;

/// How a cuckoo-family filter resolves an insertion whose candidate
/// buckets are all full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EvictionPolicy {
    /// The paper's Algorithm 1: evict a uniformly random victim from a
    /// random full candidate bucket and walk until a hole is found or
    /// `max_kicks` relocations have been attempted. One table write per
    /// kick; failed walks are rolled back from an undo log.
    #[default]
    RandomWalk,
    /// Breadth-first search over the relocation graph (Eppstein-style):
    /// expand candidate buckets level by level — Theorem 1's coset
    /// closure makes every victim's alternate set exact — until an empty
    /// slot is found or the bounded frontier is exhausted, then execute
    /// the shortest path back-to-front. The path is validated before the
    /// first write, so no undo log is needed and a successful insert
    /// performs exactly `path length + 1` writes.
    Bfs,
}

/// Geometry and policy parameters for a cuckoo-family filter, written in
/// the paper's vocabulary: `m` buckets × `b` slots, `f`-bit fingerprints,
/// `MAX` relocation threshold.
///
/// Defaults match the paper's experimental setup (Section VI-A):
/// `b = 4`, `f = 14`, `MAX = 500`, FNV hashing.
///
/// `CuckooConfig` is a non-consuming builder: chain the `with_*` methods
/// and pass the result to a filter constructor.
///
/// # Examples
///
/// ```
/// use vcf_core::{CuckooConfig, VerticalCuckooFilter};
///
/// let config = CuckooConfig::new(1 << 12)
///     .with_fingerprint_bits(16)
///     .with_max_kicks(500)
///     .with_seed(7);
/// let filter = VerticalCuckooFilter::new(config)?;
/// # Ok::<(), vcf_traits::BuildError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CuckooConfig {
    /// Number of buckets `m`; must be a power of two.
    pub buckets: usize,
    /// Slots per bucket `b` (the paper fixes 4 for all VCF variants).
    pub slots_per_bucket: usize,
    /// Fingerprint width `f` in bits.
    pub fingerprint_bits: u32,
    /// Relocation threshold `MAX`; `0` disables eviction entirely (the
    /// Table V k-VCF regime).
    pub max_kicks: u32,
    /// Hash function applied to item bytes and fingerprints.
    pub hash: HashKind,
    /// Seed for the filter's victim-selection PRNG; experiments are
    /// reproducible for a fixed seed.
    pub seed: u64,
    /// How full-candidate conflicts are resolved; the paper's random walk
    /// by default.
    pub eviction: EvictionPolicy,
}

impl CuckooConfig {
    /// Creates a configuration for `buckets` buckets with the paper's
    /// default parameters (`b = 4`, `f = 14`, `MAX = 500`, FNV).
    pub fn new(buckets: usize) -> Self {
        Self {
            buckets,
            slots_per_bucket: 4,
            fingerprint_bits: 14,
            max_kicks: 500,
            hash: HashKind::Fnv1a,
            seed: 0x5eed_cafe_f00d_d00d,
            eviction: EvictionPolicy::RandomWalk,
        }
    }

    /// Creates a configuration sized for (at least) `slots` total slots at
    /// `b = 4`, rounding the bucket count up to a power of two. The
    /// paper's experiments are parameterized by total slot count
    /// (`n = 2^θ`), so the harness uses this constructor.
    pub fn with_total_slots(slots: usize) -> Self {
        let buckets = (slots.div_ceil(4)).next_power_of_two();
        Self::new(buckets)
    }

    /// Sets the slots-per-bucket `b`.
    #[must_use]
    pub fn with_slots_per_bucket(mut self, b: usize) -> Self {
        self.slots_per_bucket = b;
        self
    }

    /// Sets the fingerprint width `f` in bits.
    #[must_use]
    pub fn with_fingerprint_bits(mut self, f: u32) -> Self {
        self.fingerprint_bits = f;
        self
    }

    /// Sets the relocation threshold `MAX`.
    #[must_use]
    pub fn with_max_kicks(mut self, max: u32) -> Self {
        self.max_kicks = max;
        self
    }

    /// Sets the hash function.
    #[must_use]
    pub fn with_hash(mut self, hash: HashKind) -> Self {
        self.hash = hash;
        self
    }

    /// Sets the PRNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the eviction policy used when all candidate buckets are full.
    #[must_use]
    pub fn with_eviction_policy(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Total slot capacity `m · b`.
    pub fn capacity(&self) -> usize {
        self.buckets * self.slots_per_bucket
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Rejects non-power-of-two or zero bucket counts (the XOR group
    /// structure of partial-key/vertical hashing needs a power-of-two
    /// index space) and out-of-range `b`/`f`.
    pub fn validate(&self) -> Result<(), BuildError> {
        if self.buckets == 0 || !self.buckets.is_power_of_two() {
            return Err(BuildError::InvalidBucketCount {
                got: self.buckets,
                requirement: "a power of two",
            });
        }
        if self.slots_per_bucket == 0 || self.slots_per_bucket > vcf_table::MAX_BUCKET_SLOTS {
            return Err(BuildError::InvalidBucketSize {
                got: self.slots_per_bucket,
            });
        }
        if !(vcf_table::MIN_FINGERPRINT_BITS..=vcf_table::MAX_FINGERPRINT_BITS)
            .contains(&self.fingerprint_bits)
        {
            return Err(BuildError::InvalidFingerprintBits {
                got: self.fingerprint_bits,
                min: vcf_table::MIN_FINGERPRINT_BITS,
                max: vcf_table::MAX_FINGERPRINT_BITS,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CuckooConfig::new(1 << 10);
        assert_eq!(c.slots_per_bucket, 4);
        assert_eq!(c.fingerprint_bits, 14);
        assert_eq!(c.max_kicks, 500);
        assert_eq!(c.hash, HashKind::Fnv1a);
    }

    #[test]
    fn with_total_slots_rounds_up() {
        let c = CuckooConfig::with_total_slots(1 << 20);
        assert_eq!(c.buckets, 1 << 18);
        assert_eq!(c.capacity(), 1 << 20);
        let c = CuckooConfig::with_total_slots((1 << 20) + 1);
        assert_eq!(c.buckets, 1 << 19);
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        assert!(CuckooConfig::new(0).validate().is_err());
        assert!(CuckooConfig::new(12).validate().is_err());
        assert!(CuckooConfig::new(16)
            .with_slots_per_bucket(0)
            .validate()
            .is_err());
        assert!(CuckooConfig::new(16)
            .with_slots_per_bucket(9)
            .validate()
            .is_err());
        assert!(CuckooConfig::new(16)
            .with_fingerprint_bits(1)
            .validate()
            .is_err());
        assert!(CuckooConfig::new(16)
            .with_fingerprint_bits(33)
            .validate()
            .is_err());
        assert!(CuckooConfig::new(16).validate().is_ok());
    }

    #[test]
    fn builder_methods_chain() {
        let c = CuckooConfig::new(8)
            .with_slots_per_bucket(2)
            .with_fingerprint_bits(10)
            .with_max_kicks(0)
            .with_hash(HashKind::Djb2)
            .with_seed(1)
            .with_eviction_policy(EvictionPolicy::Bfs);
        assert_eq!(c.slots_per_bucket, 2);
        assert_eq!(c.fingerprint_bits, 10);
        assert_eq!(c.max_kicks, 0);
        assert_eq!(c.hash, HashKind::Djb2);
        assert_eq!(c.seed, 1);
        assert_eq!(c.eviction, EvictionPolicy::Bfs);
    }

    #[test]
    fn eviction_defaults_to_random_walk() {
        assert_eq!(
            CuckooConfig::new(8).eviction,
            EvictionPolicy::RandomWalk,
            "random walk must stay the default policy"
        );
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::RandomWalk);
    }
}
