//! The Differentiated Vertical Cuckoo Filter (Section IV-B).

use crate::bitmask::MaskPair;
use crate::bulk::{self, BulkHost};
use crate::config::{CuckooConfig, EvictionPolicy};
use crate::evict;
use crate::key;
use crate::vertical::VerticalParams;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vcf_hash::HashKind;
use vcf_table::FingerprintTable;
use vcf_traits::{BuildError, Counters, Filter, InsertError, Stats};

/// The Differentiated VCF: a *continuous* trade-off between CF and VCF.
///
/// DVCF splits the fingerprint value range `[0, T)` (`T = 2^f`) at a
/// threshold `Δt`: fingerprints inside `In₁ = [T/2 − Δt, T/2 + Δt]`
/// receive **four** candidate buckets by vertical hashing (Equ. 3), all
/// others receive **two** candidates by plain partial-key hashing
/// (Equ. 1). The fraction of four-candidate items is
///
/// ```text
/// p = 2Δt / T           (Equ. 9)
/// ```
///
/// so `Δt` tunes `r = p` continuously where IVCF can only hit the discrete
/// ladder of Equ. 8 — at the cost of one extra interval judgment on every
/// operation (Algorithms 4–6).
///
/// # Examples
///
/// ```
/// use vcf_core::{CuckooConfig, Dvcf};
/// use vcf_traits::Filter;
///
/// // r = 0.5: half the items get four candidate buckets.
/// let mut dvcf = Dvcf::with_r(CuckooConfig::new(1 << 10), 0.5)?;
/// dvcf.insert(b"stream-event-1")?;
/// assert!(dvcf.contains(b"stream-event-1"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dvcf {
    table: FingerprintTable,
    params: VerticalParams,
    hash: HashKind,
    max_kicks: u32,
    eviction: EvictionPolicy,
    /// Interval bounds `[lo, hi]` (inclusive) for the four-candidate rule.
    interval_lo: u32,
    interval_hi: u32,
    rng: SmallRng,
    /// Undo log for the current eviction walk, replayed in reverse when
    /// the kick limit is reached so failed insertions leave no trace.
    undo: Vec<(usize, usize, u32)>,
    counters: Counters,
}

impl Dvcf {
    /// Builds a DVCF with an explicit threshold `Δt` (in fingerprint-value
    /// units, `0 ..= 2^(f−1)`).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry or `Δt > T/2`.
    pub fn new(config: CuckooConfig, delta_t: u32) -> Result<Self, BuildError> {
        config.validate()?;
        let t = 1u64 << config.fingerprint_bits;
        if u64::from(delta_t) > t / 2 {
            return Err(BuildError::InvalidConfig {
                reason: format!("Δt = {delta_t} exceeds T/2 = {}", t / 2),
            });
        }
        let masks = MaskPair::balanced(config.fingerprint_bits)?;
        let table = FingerprintTable::new(
            config.buckets,
            config.slots_per_bucket,
            config.fingerprint_bits,
        )?;
        let params = VerticalParams::new(masks, config.buckets);
        let half = (t / 2) as u32;
        Ok(Self {
            table,
            params,
            hash: config.hash,
            max_kicks: config.max_kicks,
            eviction: config.eviction,
            interval_lo: half - delta_t,
            interval_hi: half.saturating_add(delta_t).min((t - 1) as u32),
            rng: SmallRng::seed_from_u64(config.seed),
            undo: Vec::new(),
            counters: Counters::new(),
        })
    }

    /// Builds a DVCF whose four-candidate fraction is (approximately) `r`
    /// by choosing `Δt = r · T / 2` (Equ. 9).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry or `r` outside
    /// `[0, 1]`.
    pub fn with_r(config: CuckooConfig, r: f64) -> Result<Self, BuildError> {
        if !(0.0..=1.0).contains(&r) {
            return Err(BuildError::InvalidConfig {
                reason: format!("r must lie in [0, 1], got {r}"),
            });
        }
        let t = 1u64 << config.fingerprint_bits;
        let delta_t = ((r * t as f64) / 2.0).round() as u32;
        Self::new(config, delta_t)
    }

    /// The configured four-candidate fraction `p = 2Δt / T` (Equ. 9).
    pub fn expected_r(&self) -> f64 {
        let t = (1u64 << self.table.fingerprint_bits()) as f64;
        f64::from(self.interval_hi - self.interval_lo) / t
    }

    /// Whether `fingerprint` falls in the four-candidate interval `In₁`.
    #[inline]
    pub fn uses_four_candidates(&self, fingerprint: u32) -> bool {
        (self.interval_lo..=self.interval_hi).contains(&fingerprint)
    }

    /// Number of buckets `m`.
    pub fn buckets(&self) -> usize {
        self.table.buckets()
    }

    /// Occupancy of the slot table only — `α` as the paper measures it.
    pub fn table_load_factor(&self) -> f64 {
        self.table.load_factor()
    }

    #[inline]
    fn key_of(&self, item: &[u8]) -> (u32, usize) {
        key::hash_item(
            self.hash,
            item,
            self.table.fingerprint_bits(),
            self.params.index_mask(),
        )
    }

    /// Candidate buckets for `fingerprint` anchored at `b1`: four entries
    /// in `In₁`, two otherwise. Returns `(buckets, len)`.
    #[inline]
    fn candidate_list(&self, fingerprint: u32, b1: usize, hfp: u64) -> ([usize; 4], usize) {
        if self.uses_four_candidates(fingerprint) {
            let c = self.params.candidates(b1, hfp);
            (c.buckets, 4)
        } else {
            let alt = self.params.cf_alternate(b1, hfp);
            ([b1, alt, 0, 0], 2)
        }
    }

    /// Places an already-hashed item under the configured policy.
    fn insert_prehashed(
        &mut self,
        fingerprint: u32,
        cands: [usize; 4],
        len: usize,
    ) -> Result<(), InsertError> {
        match self.eviction {
            EvictionPolicy::RandomWalk => self.insert_random_walk(fingerprint, cands, len),
            EvictionPolicy::Bfs => self.insert_bfs(fingerprint, cands, len),
        }
    }

    /// Algorithm 4's random walk, with rollback-on-failure and bucket
    /// accesses counted as they happen.
    fn insert_random_walk(
        &mut self,
        fingerprint: u32,
        cands: [usize; 4],
        len: usize,
    ) -> Result<(), InsertError> {
        let slots = self.table.slots_per_bucket();
        let mut probes = 0u64;
        let mut bucket_accesses = 0u64;
        for &bucket in &cands[..len] {
            probes += slots as u64;
            bucket_accesses += 1;
            if self.table.try_insert(bucket, fingerprint).is_some() {
                self.counters.record_insert(probes, bucket_accesses);
                return Ok(());
            }
        }

        self.undo.clear();
        let mut current_fp = fingerprint;
        let mut current_bucket = cands[self.rng.gen_range(0..len)];
        let mut kicks = 0u64;
        for _ in 0..self.max_kicks {
            let slot = self.rng.gen_range(0..slots);
            let victim = self.table.swap(current_bucket, slot, current_fp);
            bucket_accesses += 1;
            self.undo.push((current_bucket, slot, victim));
            current_fp = victim;
            kicks += 1;

            // "During each relocation, the judgment about the victim's
            // location is necessary before reinserting this victim."
            let victim_hash = self.hash.hash_fingerprint(current_fp);
            self.counters.add_hashes(1);
            if self.uses_four_candidates(current_fp) {
                let alts = self.params.alternates(current_bucket, victim_hash);
                let mut placed = false;
                for &alt in &alts {
                    probes += slots as u64;
                    bucket_accesses += 1;
                    if self.table.try_insert(alt, current_fp).is_some() {
                        placed = true;
                        break;
                    }
                }
                if placed {
                    self.counters.add_kicks(kicks);
                    self.counters.record_insert(probes, bucket_accesses);
                    return Ok(());
                }
                current_bucket = alts[self.rng.gen_range(0..3)];
            } else {
                let alt = self.params.cf_alternate(current_bucket, victim_hash);
                probes += slots as u64;
                bucket_accesses += 1;
                if self.table.try_insert(alt, current_fp).is_some() {
                    self.counters.add_kicks(kicks);
                    self.counters.record_insert(probes, bucket_accesses);
                    return Ok(());
                }
                current_bucket = alt;
            }
        }

        for &(bucket, slot, previous) in self.undo.iter().rev() {
            self.table.set(bucket, slot, previous);
        }
        self.undo.clear();
        self.counters.add_kicks(kicks);
        self.counters.record_insert(probes, bucket_accesses);
        self.counters.add_failed_insert();
        Err(InsertError::Full { kicks })
    }

    /// BFS policy: each expanded victim gets the per-fingerprint interval
    /// judgment of Algorithm 4 — three vertical alternates inside `In₁`,
    /// the single CF alternate outside — so the searched graph is exactly
    /// the graph the random walk samples. No undo log: nothing is written
    /// unless a complete path was found.
    fn insert_bfs(
        &mut self,
        fingerprint: u32,
        cands: [usize; 4],
        len: usize,
    ) -> Result<(), InsertError> {
        use core::cell::Cell;

        let slots = self.table.slots_per_bucket();
        let probes = Cell::new(0u64);
        let accesses = Cell::new(0u64);
        let max_nodes = if self.max_kicks == 0 {
            0
        } else {
            (self.max_kicks as usize).max(8)
        };

        let table = &self.table;
        let params = &self.params;
        let hash = self.hash;
        let counters = &self.counters;
        let interval = self.interval_lo..=self.interval_hi;
        let path = evict::search(
            cands[..len].iter().map(|&b| (b, fingerprint)),
            max_nodes,
            |bucket| {
                probes.set(probes.get() + slots as u64);
                accesses.set(accesses.get() + 1);
                table.first_empty_slot(bucket)
            },
            |bucket, out| {
                accesses.set(accesses.get() + 1);
                for slot in 0..slots {
                    let resident = table.get(bucket, slot);
                    let hfp = hash.hash_fingerprint(resident);
                    counters.add_hashes(1);
                    if interval.contains(&resident) {
                        for &alt in &params.alternates(bucket, hfp) {
                            out.push((slot, alt, resident));
                        }
                    } else {
                        out.push((slot, params.cf_alternate(bucket, hfp), resident));
                    }
                }
            },
        );

        let Some(path) = path else {
            self.counters.record_insert(probes.get(), accesses.get());
            self.counters.add_failed_insert();
            return Err(InsertError::Full { kicks: 0 });
        };

        let kicks = path.kicks();
        let mut dest = path.empty_slot;
        for step in path.steps[1..].iter().rev() {
            self.table.set(step.bucket, dest, step.value);
            dest = step.slot_in_parent;
        }
        self.table.set(path.steps[0].bucket, dest, fingerprint);
        self.counters.add_kicks(kicks);
        self.counters
            .record_insert(probes.get(), accesses.get() + kicks + 1);
        Ok(())
    }
}

impl BulkHost for Dvcf {
    /// `(fingerprint, candidate buckets, candidate count)` — two or four
    /// candidates depending on the interval judgment, stored narrow.
    type Key = (u32, [u32; 4], u32);

    fn bulk_buckets(&self) -> usize {
        self.table.buckets()
    }

    fn bulk_key(&self, item: &[u8]) -> Self::Key {
        let (fingerprint, b1) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fingerprint);
        let (cands, len) = self.candidate_list(fingerprint, b1, hfp);
        (fingerprint, cands.map(|b| b as u32), len as u32)
    }

    fn bulk_candidates(&self, key: &Self::Key) -> usize {
        key.2 as usize
    }

    fn bulk_candidate(&self, key: &Self::Key, e: usize) -> usize {
        key.1[e] as usize
    }

    fn bulk_prefetch(&self, bucket: usize) {
        self.table.prefetch_bucket(bucket);
    }

    fn bulk_try_place(&mut self, key: &Self::Key, e: usize) -> bool {
        self.table.try_insert(key.1[e] as usize, key.0).is_some()
    }

    fn bulk_place_run(&mut self, bucket: usize, keys: &[Self::Key]) -> usize {
        let mut fps = [0u64; vcf_table::MAX_BUCKET_SLOTS];
        let take = keys.len().min(fps.len());
        for (fp, key) in fps.iter_mut().zip(&keys[..take]) {
            *fp = u64::from(key.0);
        }
        self.table.fill(bucket, &fps[..take])
    }

    fn bulk_record_keys(&self, n: u64) {
        self.counters.add_hashes(2 * n);
    }

    fn bulk_record_swept(&self, items: u64, bucket_accesses: u64) {
        let slots = self.table.slots_per_bucket() as u64;
        self.counters
            .record_inserts(items, bucket_accesses * slots, bucket_accesses);
    }

    fn bulk_insert(&mut self, key: &Self::Key) -> Result<(), InsertError> {
        self.insert_prehashed(key.0, key.1.map(|b| b as usize), key.2 as usize)
    }
}

impl Filter for Dvcf {
    /// Algorithm 4 under the configured eviction policy.
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        let (fingerprint, b1) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fingerprint);
        self.counters.add_hashes(2);
        let (cands, len) = self.candidate_list(fingerprint, b1, hfp);
        self.insert_prehashed(fingerprint, cands, len)
    }

    /// Pipelined Algorithm 4: interval judgments, candidate derivation
    /// and bucket prefetches for a window of items first, then in-order
    /// placement through the same path as serial [`insert`](Self::insert)
    /// (identical PRNG consumption, so batch ≡ serial exactly).
    fn insert_batch(&mut self, items: &[&[u8]]) -> Vec<Result<(), InsertError>> {
        const WINDOW: usize = 16;
        let mut out = Vec::with_capacity(items.len());
        let mut window = Vec::with_capacity(WINDOW);
        for chunk in items.chunks(WINDOW) {
            window.clear();
            for item in chunk {
                let (fingerprint, b1) = self.key_of(item);
                let hfp = self.hash.hash_fingerprint(fingerprint);
                self.counters.add_hashes(2);
                let (cands, len) = self.candidate_list(fingerprint, b1, hfp);
                for &bucket in &cands[..len] {
                    self.table.prefetch_bucket(bucket);
                }
                window.push((fingerprint, cands, len));
            }
            for &(fingerprint, cands, len) in &window {
                out.push(self.insert_prehashed(fingerprint, cands, len));
            }
        }
        out
    }

    /// Sort-by-bucket bulk construction (see [`crate::bulk`]); the
    /// two-candidate items drop to the cleanup pass after round 1.
    fn build_from_iter(
        &mut self,
        items: &mut dyn Iterator<Item = &[u8]>,
    ) -> Vec<Result<(), InsertError>> {
        bulk::build_from_iter(self, items)
    }

    /// Algorithm 5.
    fn contains(&self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fingerprint);
        let (cands, len) = self.candidate_list(fingerprint, b1, hfp);
        let mut probes = 0u64;
        let mut found = false;
        for &bucket in &cands[..len] {
            probes += self.table.slots_per_bucket() as u64;
            if self.table.contains(bucket, fingerprint) {
                found = true;
                break;
            }
        }
        self.counters.record_lookup(probes, len as u64);
        found
    }

    /// Batched Algorithm 5: interval judgments and candidate derivation
    /// for the whole batch first (touching each primary bucket early),
    /// then a probe pass over the precomputed candidate lists.
    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        let mut keys = Vec::with_capacity(items.len());
        for item in items {
            let (fingerprint, b1) = self.key_of(item);
            let hfp = self.hash.hash_fingerprint(fingerprint);
            let (cands, len) = self.candidate_list(fingerprint, b1, hfp);
            for &bucket in &cands[..len] {
                self.table.touch_bucket(bucket);
            }
            keys.push((fingerprint, cands, len));
        }
        let slots = self.table.slots_per_bucket() as u64;
        let mut out = Vec::with_capacity(items.len());
        for &(fingerprint, cands, len) in &keys {
            // One multi-bucket probe over the whole candidate list
            // (gather-compare under AVX2; no per-bucket early exit).
            let found = self.table.contains_any(&cands[..len], fingerprint);
            self.counters.record_lookup(len as u64 * slots, len as u64);
            out.push(found);
        }
        out
    }

    /// Algorithm 6.
    fn delete(&mut self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let hfp = self.hash.hash_fingerprint(fingerprint);
        let (cands, len) = self.candidate_list(fingerprint, b1, hfp);
        let mut probes = 0u64;
        let mut removed = false;
        let mut tried = [usize::MAX; 4];
        let mut tried_len = 0;
        debug_assert!(len <= tried.len(), "at most 4 candidate buckets");
        for &bucket in &cands[..len] {
            if tried[..tried_len].contains(&bucket) {
                continue;
            }
            tried[tried_len] = bucket;
            tried_len += 1;
            probes += self.table.slots_per_bucket() as u64;
            if self.table.remove_one(bucket, fingerprint) {
                removed = true;
                break;
            }
        }
        self.counters.record_delete(probes, tried_len as u64);
        removed
    }

    fn len(&self) -> usize {
        self.table.occupied()
    }

    fn capacity(&self) -> usize {
        self.table.capacity()
    }

    fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
    }

    fn name(&self) -> String {
        format!("DVCF(r={:.3})", self.expected_r())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("dvcf-{i}").into_bytes()
    }

    #[test]
    fn r_zero_behaves_like_cf_interval() {
        let f = Dvcf::with_r(CuckooConfig::new(1 << 8), 0.0).unwrap();
        assert!(f.expected_r() < 1e-3);
        // Almost no fingerprint is in In1 (only exactly T/2).
        let hits = (1u32..1 << 14)
            .filter(|&fp| f.uses_four_candidates(fp))
            .count();
        assert!(hits <= 1);
    }

    #[test]
    fn r_one_gives_everyone_four_candidates() {
        let f = Dvcf::with_r(CuckooConfig::new(1 << 8), 1.0).unwrap();
        assert!((f.expected_r() - 1.0).abs() < 1e-3);
        for fp in [1u32, 100, 8000, (1 << 14) - 1] {
            assert!(f.uses_four_candidates(fp), "fp={fp}");
        }
    }

    #[test]
    fn interval_fraction_matches_r() {
        for r in [0.125, 0.25, 0.5, 0.75] {
            let f = Dvcf::with_r(CuckooConfig::new(1 << 8), r).unwrap();
            let total = 1u32 << 14;
            let hits = (0..total).filter(|&fp| f.uses_four_candidates(fp)).count();
            let measured = hits as f64 / f64::from(total);
            assert!((measured - r).abs() < 0.01, "r={r} measured={measured}");
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Dvcf::with_r(CuckooConfig::new(1 << 8), -0.1).is_err());
        assert!(Dvcf::with_r(CuckooConfig::new(1 << 8), 1.1).is_err());
        assert!(Dvcf::new(CuckooConfig::new(1 << 8), 1 << 13).is_ok());
        assert!(Dvcf::new(CuckooConfig::new(1 << 8), (1 << 13) + 1).is_err());
        assert!(Dvcf::new(CuckooConfig::new(12), 0).is_err());
    }

    #[test]
    fn roundtrip_and_no_false_negatives() {
        let mut f = Dvcf::with_r(CuckooConfig::new(1 << 8).with_seed(4), 0.5).unwrap();
        for i in 0..700 {
            f.insert(&key(i)).unwrap();
        }
        for i in 0..700 {
            assert!(f.contains(&key(i)), "item {i} lost");
        }
        for i in 0..350 {
            assert!(f.delete(&key(i)), "item {i} not deletable");
        }
        for i in 350..700 {
            assert!(f.contains(&key(i)), "item {i} vanished after deletes");
        }
    }

    #[test]
    fn no_false_negatives_after_overflow() {
        let mut f = Dvcf::with_r(CuckooConfig::new(1 << 6).with_seed(11), 0.75).unwrap();
        let mut acknowledged = Vec::new();
        for i in 0..(f.capacity() as u64 + 60) {
            if f.insert(&key(i)).is_ok() {
                acknowledged.push(i);
            }
        }
        for i in acknowledged {
            assert!(f.contains(&key(i)), "acknowledged {i} lost");
        }
    }

    #[test]
    fn higher_r_fills_further() {
        let fill = |r: f64| {
            let mut f = Dvcf::with_r(CuckooConfig::new(1 << 10).with_seed(13), r).unwrap();
            let mut stored = 0u32;
            for i in 0..f.capacity() as u64 {
                if f.insert(&key(i)).is_ok() {
                    stored += 1;
                }
            }
            f64::from(stored) / f.capacity() as f64
        };
        let low = fill(0.125);
        let high = fill(1.0);
        assert!(
            high > low,
            "four-candidate items must raise the load factor: low={low} high={high}"
        );
        assert!(high > 0.98, "DVCF(r=1) should approach VCF load: {high}");
    }

    #[test]
    fn name_reports_r() {
        let f = Dvcf::with_r(CuckooConfig::new(1 << 8), 0.25).unwrap();
        assert!(f.name().starts_with("DVCF"));
        assert!(f.name().contains("0.250"));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut f = Dvcf::with_r(CuckooConfig::new(1 << 8).with_seed(21), 0.5).unwrap();
            let mut stored = 0u32;
            for i in 0..1100 {
                if f.insert(&key(i)).is_ok() {
                    stored += 1;
                }
            }
            (stored, f.stats().kicks)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn insert_batch_matches_serial_exactly() {
        let keys: Vec<Vec<u8>> = (0..1100).map(key).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let config = CuckooConfig::new(1 << 8).with_seed(33);

        let mut serial = Dvcf::with_r(config, 0.5).unwrap();
        let serial_results: Vec<_> = refs.iter().map(|k| serial.insert(k)).collect();
        let mut batched = Dvcf::with_r(config, 0.5).unwrap();
        let batch_results = batched.insert_batch(&refs);

        assert_eq!(serial_results, batch_results);
        assert_eq!(serial.len(), batched.len());
        assert_eq!(serial.stats().kicks, batched.stats().kicks);
        for k in &refs {
            assert_eq!(serial.contains(k), batched.contains(k));
        }
    }

    #[test]
    fn bfs_policy_preserves_membership_and_load() {
        let mut f = Dvcf::with_r(
            CuckooConfig::new(1 << 8)
                .with_seed(17)
                .with_eviction_policy(EvictionPolicy::Bfs),
            0.5,
        )
        .unwrap();
        let mut acknowledged = Vec::new();
        for i in 0..f.capacity() as u64 {
            if f.insert(&key(i)).is_ok() {
                acknowledged.push(i);
            }
        }
        assert!(
            acknowledged.len() as f64 / f.capacity() as f64 > 0.9,
            "BFS DVCF(0.5) load too low"
        );
        for i in acknowledged {
            assert!(f.contains(&key(i)), "item {i} lost under BFS eviction");
        }
    }
}
