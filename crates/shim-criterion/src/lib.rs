//! Offline drop-in shim for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this crate implements
//! the benchmark-harness surface the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`Throughput::Elements`],
//! [`BenchmarkId::from_parameter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is real: each benchmark is warmed up, then timed over
//! `sample_size` samples with enough iterations per sample to amortize
//! clock overhead. The median ns/iter (and derived element throughput,
//! when set) is printed in a criterion-like one-line format. There are
//! no statistical reports, baselines, or plots.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock time per recorded sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);
/// Warm-up budget before sampling starts.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// How measured quantities relate to throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Per-iteration batching policy for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is large: one setup per timed call.
    LargeInput,
    /// Setup output is small; the shim still runs one setup per call.
    SmallInput,
    /// Explicit batch size; the shim still runs one setup per call.
    NumIterations(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a single parameter, e.g. a label or a size.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// Builds a `function_name/parameter` id.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Collects timing samples for one benchmark run.
pub struct Bencher {
    sample_size: usize,
    /// Mean ns/iter for each recorded sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            samples: Vec::with_capacity(sample_size),
        }
    }

    /// Times `routine` directly, back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate cost per call.
        let mut iters_per_sample = 1u64;
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < WARMUP_TARGET && calls < 1_000_000 {
            std::hint::black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_nanos() as f64 / calls.max(1) as f64;
        if per_call > 0.0 {
            iters_per_sample =
                ((SAMPLE_TARGET.as_nanos() as f64 / per_call) as u64).clamp(1, 1 << 24);
        }

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the recorded samples.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up once so lazy initialization is outside timing.
        {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let output = routine(input);
            let elapsed = start.elapsed().as_nanos() as f64;
            std::hint::black_box(output);
            self.samples.push(elapsed);
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        {
            let mut input = setup();
            std::hint::black_box(routine(&mut input));
        }
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            let output = routine(&mut input);
            let elapsed = start.elapsed().as_nanos() as f64;
            std::hint::black_box(output);
            self.samples.push(elapsed);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        self.samples[self.samples.len() / 2]
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.criterion.sample_size);
        f(&mut bencher);
        let ns = bencher.median_ns();
        let mut line = format!("{}/{:<24} time: [{}]", self.name, id.id, fmt_ns(ns));
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            if ns > 0.0 {
                use std::fmt::Write as _;
                let rate = count as f64 * 1e9 / ns;
                let _ = write!(line, " thrpt: [{} {unit}]", fmt_rate(rate));
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let ns = bencher.median_ns();
        println!("{:<32} time: [{}]", id.id, fmt_ns(ns));
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.4} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.4} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.4} K", rate / 1e3)
    } else {
        format!("{rate:.4}")
    }
}

/// Opaque value barrier, re-exported for criterion API compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut b = Bencher::new(4);
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.samples.len(), 4);
        assert!(b.median_ns() >= 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(3);
        let mut setups = 0usize;
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 64]
            },
            |v| v.len(),
            BatchSize::LargeInput,
        );
        // One warm-up setup plus one per sample.
        assert_eq!(setups, 4);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("shim/self_test");
        g.throughput(Throughput::Elements(10));
        g.bench_function(BenchmarkId::from_parameter("noop"), |b| {
            b.iter(|| std::hint::black_box(1 + 1));
        });
        g.bench_function("plain_str_id", |b| {
            b.iter(|| std::hint::black_box(2 + 2));
        });
        g.finish();
    }

    #[test]
    fn macros_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("macro_target", |b| b.iter(|| black_box(3)));
        }
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2);
            targets = target
        }
        benches();
    }
}
