//! Workload generators for the VCF experiments.
//!
//! The paper evaluates on the UCI **HIGGS** dataset: 28 kinematic features
//! per event, with features 3 and 4 merged and the result deduplicated to
//! obtain unique keys. The filters only ever see those keys as opaque byte
//! strings — all structure beyond *uniqueness* is destroyed by hashing —
//! so this crate substitutes a deterministic synthetic generator with the
//! same shape ([`higgs`]), plus generic unique-key streams ([`keys`]),
//! a Zipf sampler for skewed-access extensions ([`zipf`]), and the
//! insert/delete churn traces that model the paper's "online applications
//! wherein the items join and leave frequently" ([`churn`]).
//!
//! Everything is seeded and reproducible.
//!
//! # Examples
//!
//! ```
//! use vcf_workloads::higgs::HiggsDataset;
//!
//! let dataset = HiggsDataset::generate(1000, 42);
//! assert_eq!(dataset.keys().len(), 1000);
//! // Deterministic: same seed, same keys.
//! assert_eq!(dataset.keys()[5], HiggsDataset::generate(1000, 42).keys()[5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod higgs;
pub mod keys;
pub mod zipf;

pub use churn::{ChurnConfig, ChurnTrace, Op};
pub use higgs::{HiggsDataset, HiggsRecord};
pub use keys::KeyStream;
pub use zipf::Zipf;
