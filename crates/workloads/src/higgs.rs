//! Synthetic HIGGS-like dataset.
//!
//! **Substitution note (see DESIGN.md).** The paper uses the UCI HIGGS
//! dataset (11 M particle-collision events × 28 kinematic features),
//! merging features 3 and 4 and deduplicating to obtain unique keys. The
//! filters consume only the serialized bytes of each record; every
//! property except *uniqueness and byte-string shape* is erased by the
//! first hash. This module therefore generates records with the same
//! schema — 27 floating-point fields after the merge, serialized to the
//! textual CSV-like form a HIGGS reader would produce — from a seeded
//! PRNG, and runs the same dedup pass the paper describes.

use vcf_hash::SplitMix64;

/// Number of kinematic features in a raw HIGGS event.
pub const RAW_FEATURES: usize = 28;

/// Features after merging features 3 and 4 (0-indexed 2 and 3).
pub const MERGED_FEATURES: usize = RAW_FEATURES - 1;

/// One synthetic collision event with the merged-feature schema.
#[derive(Debug, Clone, PartialEq)]
pub struct HiggsRecord {
    /// The 27 post-merge feature values.
    pub features: [f32; MERGED_FEATURES],
}

impl HiggsRecord {
    /// Generates one record from a PRNG, mimicking the value ranges of the
    /// real dataset (standardized detector quantities, mostly in
    /// `[-3, 3]`).
    fn generate(rng: &mut SplitMix64) -> Self {
        let mut raw = [0f32; RAW_FEATURES];
        for value in raw.iter_mut() {
            // Map a uniform u64 to roughly standard-normal-ish range via a
            // cheap triangular sum: adequate, and deterministic.
            let a = (rng.next_u64() >> 40) as f32 / (1 << 24) as f32;
            let b = (rng.next_u64() >> 40) as f32 / (1 << 24) as f32;
            let c = (rng.next_u64() >> 40) as f32 / (1 << 24) as f32;
            *value = (a + b + c) * 2.0 - 3.0;
        }
        // "We merge the third and fourth features" — sum them into one.
        let mut features = [0f32; MERGED_FEATURES];
        features[..2].copy_from_slice(&raw[..2]);
        features[2] = raw[2] + raw[3];
        features[3..].copy_from_slice(&raw[4..]);
        Self { features }
    }

    /// Serializes the record to the byte key the filters consume, in the
    /// comma-separated decimal form a CSV reader of the real dataset would
    /// hand over.
    pub fn to_key(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(MERGED_FEATURES * 10);
        for (i, v) in self.features.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Fixed precision mirrors the dataset's textual encoding.
            let _ = write!(out, "{v:.6}");
        }
        out.into_bytes()
    }
}

/// A deduplicated synthetic HIGGS dataset: `n` unique byte keys.
///
/// # Examples
///
/// ```
/// use vcf_workloads::higgs::HiggsDataset;
///
/// let d = HiggsDataset::generate(100, 7);
/// let keys = d.keys();
/// assert_eq!(keys.len(), 100);
/// // Keys look like CSV rows of 27 floats.
/// assert_eq!(keys[0].iter().filter(|&&b| b == b',').count(), 26);
/// ```
#[derive(Debug, Clone)]
pub struct HiggsDataset {
    keys: Vec<Vec<u8>>,
}

impl HiggsDataset {
    /// Generates `n` unique keys from `seed`, running the paper's dedup
    /// pass (duplicates are regenerated until `n` unique keys exist).
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x0048_4947_4753); // "HIGGS"
        let mut seen = std::collections::HashSet::with_capacity(n * 2);
        let mut keys = Vec::with_capacity(n);
        while keys.len() < n {
            let record = HiggsRecord::generate(&mut rng);
            let key = record.to_key();
            // Dedup pass: the paper deduplicates the merged dataset.
            if seen.insert(key.clone()) {
                keys.push(key);
            }
        }
        Self { keys }
    }

    /// The unique keys, in generation order.
    pub fn keys(&self) -> &[Vec<u8>] {
        &self.keys
    }

    /// Splits the dataset into a `stored` prefix and an `alien` suffix —
    /// the paper's FPR methodology builds the alien query set `D` from
    /// dataset items that were *not* inserted.
    ///
    /// # Panics
    ///
    /// Panics if `stored > len`.
    pub fn split(&self, stored: usize) -> (&[Vec<u8>], &[Vec<u8>]) {
        assert!(stored <= self.keys.len(), "split point beyond dataset");
        self.keys.split_at(stored)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        assert_eq!(HiggsDataset::generate(0, 1).len(), 0);
        assert_eq!(HiggsDataset::generate(1, 1).len(), 1);
        assert_eq!(HiggsDataset::generate(5000, 1).len(), 5000);
    }

    #[test]
    fn keys_are_unique() {
        let d = HiggsDataset::generate(20_000, 3);
        let mut set = std::collections::HashSet::new();
        for k in d.keys() {
            assert!(set.insert(k.clone()), "duplicate key escaped dedup");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = HiggsDataset::generate(500, 9);
        let b = HiggsDataset::generate(500, 9);
        assert_eq!(a.keys(), b.keys());
        let c = HiggsDataset::generate(500, 10);
        assert_ne!(a.keys(), c.keys());
    }

    #[test]
    fn record_has_merged_schema() {
        let mut rng = SplitMix64::new(1);
        let r = HiggsRecord::generate(&mut rng);
        assert_eq!(r.features.len(), 27);
        let key = r.to_key();
        assert_eq!(key.iter().filter(|&&b| b == b',').count(), 26);
    }

    #[test]
    fn values_in_plausible_detector_range() {
        let mut rng = SplitMix64::new(2);
        for _ in 0..100 {
            let r = HiggsRecord::generate(&mut rng);
            for (i, &v) in r.features.iter().enumerate() {
                // merged feature can reach ±6, others ±3
                let bound = if i == 2 { 6.001 } else { 3.001 };
                assert!(v.abs() <= bound, "feature {i} = {v} out of range");
            }
        }
    }

    #[test]
    fn split_partitions_dataset() {
        let d = HiggsDataset::generate(100, 4);
        let (stored, alien) = d.split(60);
        assert_eq!(stored.len(), 60);
        assert_eq!(alien.len(), 40);
    }

    #[test]
    #[should_panic(expected = "beyond dataset")]
    fn split_out_of_range_panics() {
        HiggsDataset::generate(10, 1).split(11);
    }
}
