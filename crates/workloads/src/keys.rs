//! Generic unique-key streams.
//!
//! For experiments where the key *content* is irrelevant (everything but
//! uniqueness dies at the first hash), generating full HIGGS records is
//! wasted work. `KeyStream` produces compact unique 16-byte keys at
//! memory-bandwidth speed, deterministically.

use vcf_hash::SplitMix64;

/// An iterator of unique, deterministic byte keys.
///
/// Keys are 16 bytes: a mixed counter plus the raw counter, so uniqueness
/// is structural (the counter half never repeats), and the mixed half
/// keeps the bytes hash-function-friendly (no trivially shared prefixes).
///
/// # Examples
///
/// ```
/// use vcf_workloads::KeyStream;
///
/// let keys: Vec<Vec<u8>> = KeyStream::new(99).take(3).collect();
/// assert_eq!(keys.len(), 3);
/// assert_ne!(keys[0], keys[1]);
/// ```
#[derive(Debug, Clone)]
pub struct KeyStream {
    mixer: SplitMix64,
    counter: u64,
}

impl KeyStream {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            mixer: SplitMix64::new(seed),
            counter: 0,
        }
    }

    /// Collects the next `n` keys into a vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.next_key()).collect()
    }

    /// Produces the next key.
    pub fn next_key(&mut self) -> Vec<u8> {
        let mixed = self.mixer.next_u64();
        let mut key = Vec::with_capacity(16);
        key.extend_from_slice(&mixed.to_le_bytes());
        key.extend_from_slice(&self.counter.to_le_bytes());
        self.counter += 1;
        key
    }
}

impl Iterator for KeyStream {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        Some(self.next_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique() {
        let keys = KeyStream::new(1).take_vec(100_000);
        let set: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            KeyStream::new(5).take_vec(100),
            KeyStream::new(5).take_vec(100)
        );
        assert_ne!(
            KeyStream::new(5).take_vec(100),
            KeyStream::new(6).take_vec(100)
        );
    }

    #[test]
    fn keys_are_16_bytes() {
        for key in KeyStream::new(2).take(10) {
            assert_eq!(key.len(), 16);
        }
    }

    #[test]
    fn iterator_and_take_vec_agree() {
        let via_iter: Vec<Vec<u8>> = KeyStream::new(3).take(10).collect();
        let via_take = KeyStream::new(3).take_vec(10);
        assert_eq!(via_iter, via_take);
    }
}
