//! Insert/delete churn traces — the paper's motivating workload.
//!
//! "Insertion-intensive online applications where items insert and delete
//! frequently" (Section I). A churn trace first fills the filter to a
//! target occupancy, then alternates deletions and insertions (keeping
//! occupancy near the target) interleaved with lookups of live, dead and
//! alien keys. Sustained operation at high occupancy is exactly where
//! CF's eviction cascades hurt and VCF's extra candidates pay off.

use vcf_hash::SplitMix64;

/// One trace operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert the key; the filter should acknowledge or report Full.
    Insert(Vec<u8>),
    /// Delete the key (always one that the trace previously inserted).
    Delete(Vec<u8>),
    /// Look up a key; `expected_present` is the ground truth.
    Lookup {
        /// The key to query.
        key: Vec<u8>,
        /// Whether the key is genuinely live at this point in the trace.
        expected_present: bool,
    },
}

/// Parameters for [`ChurnTrace::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Number of live items after the warm-up fill.
    pub working_set: usize,
    /// Number of churn rounds after warm-up; each round is one delete +
    /// one insert (+ lookups per `lookup_ratio`).
    pub rounds: usize,
    /// Lookups issued per churn round.
    pub lookups_per_round: usize,
    /// Fraction of lookups aimed at live keys (the rest query alien keys).
    pub positive_fraction: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            working_set: 10_000,
            rounds: 10_000,
            lookups_per_round: 2,
            positive_fraction: 0.5,
            seed: 0xc4u64,
        }
    }
}

/// A generated churn trace: a warm-up fill followed by delete/insert
/// rounds with interleaved lookups.
///
/// # Examples
///
/// ```
/// use vcf_workloads::{ChurnConfig, ChurnTrace, Op};
///
/// let trace = ChurnTrace::generate(ChurnConfig {
///     working_set: 100,
///     rounds: 50,
///     ..ChurnConfig::default()
/// });
/// // Warm-up inserts come first.
/// assert!(matches!(trace.ops()[0], Op::Insert(_)));
/// ```
#[derive(Debug, Clone)]
pub struct ChurnTrace {
    ops: Vec<Op>,
    config: ChurnConfig,
}

impl ChurnTrace {
    /// Generates a trace from `config`. Deterministic for a fixed seed.
    pub fn generate(config: ChurnConfig) -> Self {
        let mut rng = SplitMix64::new(config.seed);
        let mut next_id: u64 = 0;
        let make_key = |id: u64| format!("churn-{id}").into_bytes();
        let mut live: Vec<u64> = Vec::with_capacity(config.working_set);
        let mut ops = Vec::new();

        for _ in 0..config.working_set {
            let id = next_id;
            next_id += 1;
            live.push(id);
            ops.push(Op::Insert(make_key(id)));
        }

        let mut alien_counter: u64 = 1 << 62;
        for _ in 0..config.rounds {
            if !live.is_empty() {
                let pos = rng.next_below(live.len() as u64) as usize;
                let id = live.swap_remove(pos);
                ops.push(Op::Delete(make_key(id)));
            }
            let id = next_id;
            next_id += 1;
            live.push(id);
            ops.push(Op::Insert(make_key(id)));

            for _ in 0..config.lookups_per_round {
                let roll = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                if roll < config.positive_fraction && !live.is_empty() {
                    let pos = rng.next_below(live.len() as u64) as usize;
                    ops.push(Op::Lookup {
                        key: make_key(live[pos]),
                        expected_present: true,
                    });
                } else {
                    alien_counter += 1;
                    ops.push(Op::Lookup {
                        key: format!("alien-{alien_counter}").into_bytes(),
                        expected_present: false,
                    });
                }
            }
        }

        Self { ops, config }
    }

    /// The operations in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The generating configuration.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> std::slice::Iter<'_, Op> {
        self.ops.iter()
    }
}

impl<'a> IntoIterator for &'a ChurnTrace {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small() -> ChurnConfig {
        ChurnConfig {
            working_set: 200,
            rounds: 500,
            lookups_per_round: 2,
            ..Default::default()
        }
    }

    #[test]
    fn warmup_then_churn_structure() {
        let t = ChurnTrace::generate(small());
        let warmup = &t.ops()[..200];
        assert!(warmup.iter().all(|op| matches!(op, Op::Insert(_))));
        let total_inserts = t.iter().filter(|op| matches!(op, Op::Insert(_))).count();
        let total_deletes = t.iter().filter(|op| matches!(op, Op::Delete(_))).count();
        assert_eq!(total_inserts, 200 + 500);
        assert_eq!(total_deletes, 500);
    }

    #[test]
    fn deletes_only_target_live_keys() {
        let t = ChurnTrace::generate(small());
        let mut live: HashSet<Vec<u8>> = HashSet::new();
        for op in t.iter() {
            match op {
                Op::Insert(k) => {
                    assert!(live.insert(k.clone()), "double insert of {k:?}");
                }
                Op::Delete(k) => {
                    assert!(live.remove(k), "delete of dead key {k:?}");
                }
                Op::Lookup {
                    key,
                    expected_present,
                } => {
                    assert_eq!(
                        live.contains(key),
                        *expected_present,
                        "ground truth mismatch for {key:?}"
                    );
                }
            }
        }
        assert_eq!(
            live.len(),
            200,
            "occupancy must return to the working set size"
        );
    }

    #[test]
    fn lookup_mix_respects_positive_fraction() {
        let config = ChurnConfig {
            working_set: 100,
            rounds: 5000,
            lookups_per_round: 1,
            positive_fraction: 0.5,
            seed: 5,
        };
        let t = ChurnTrace::generate(config);
        let (mut pos, mut neg) = (0u32, 0u32);
        for op in t.iter() {
            if let Op::Lookup {
                expected_present, ..
            } = op
            {
                if *expected_present {
                    pos += 1;
                } else {
                    neg += 1;
                }
            }
        }
        let frac = f64::from(pos) / f64::from(pos + neg);
        assert!((frac - 0.5).abs() < 0.05, "positive fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ChurnTrace::generate(small());
        let b = ChurnTrace::generate(small());
        assert_eq!(a.ops(), b.ops());
    }
}
