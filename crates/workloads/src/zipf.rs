//! Zipf-distributed rank sampler.
//!
//! Online workloads (caches, flow tables) are rarely uniform; lookup
//! popularity typically follows a Zipf law. The harness's churn extension
//! uses this sampler for skewed lookups. Implementation: inverse-CDF over
//! the precomputed harmonic prefix sums — exact, O(log n) per sample.

use vcf_hash::SplitMix64;

/// A Zipf(`s`) sampler over ranks `0..n`.
///
/// # Examples
///
/// ```
/// use vcf_workloads::Zipf;
///
/// let mut z = Zipf::new(1000, 1.0, 42)?;
/// let r = z.sample();
/// assert!(r < 1000);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    rng: SplitMix64,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s` (0 = uniform,
    /// 1 = classic Zipf).
    ///
    /// # Errors
    ///
    /// Returns an error when `n == 0`, or `s` is negative or not finite.
    pub fn new(n: usize, s: f64, seed: u64) -> Result<Self, String> {
        if n == 0 {
            return Err("Zipf needs at least one rank".to_owned());
        }
        if !s.is_finite() || s < 0.0 {
            return Err(format!(
                "Zipf exponent must be finite and non-negative, got {s}"
            ));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for value in cdf.iter_mut() {
            *value /= total;
        }
        Ok(Self {
            cdf,
            rng: SplitMix64::new(seed),
        })
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank (0 = most popular).
    pub fn sample(&mut self) -> usize {
        let u = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        // partition_point returns the count of entries < u, i.e. the first
        // rank whose CDF reaches u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(Zipf::new(0, 1.0, 1).is_err());
        assert!(Zipf::new(10, -1.0, 1).is_err());
        assert!(Zipf::new(10, f64::NAN, 1).is_err());
        assert!(Zipf::new(10, f64::INFINITY, 1).is_err());
    }

    #[test]
    fn samples_in_range() {
        let mut z = Zipf::new(50, 1.0, 7).unwrap();
        for _ in 0..10_000 {
            assert!(z.sample() < 50);
        }
    }

    #[test]
    fn rank_zero_dominates_at_s1() {
        let mut z = Zipf::new(1000, 1.0, 9).unwrap();
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample()] += 1;
        }
        // Under Zipf(1) over 1000 ranks, rank 0 gets ~1/H(1000) ≈ 13.4%.
        let p0 = f64::from(counts[0]) / 100_000.0;
        assert!((p0 - 0.134).abs() < 0.02, "p0 = {p0}");
        // And rank 0 beats rank 100 by roughly 100×.
        assert!(counts[0] > counts[100] * 20);
    }

    #[test]
    fn s_zero_is_uniform() {
        let mut z = Zipf::new(10, 0.0, 11).unwrap();
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample()] += 1;
        }
        for (rank, &c) in counts.iter().enumerate() {
            let p = f64::from(c) / 100_000.0;
            assert!((p - 0.1).abs() < 0.01, "rank {rank}: p = {p}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Zipf::new(100, 1.2, 3).unwrap();
        let mut b = Zipf::new(100, 1.2, 3).unwrap();
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }
}
