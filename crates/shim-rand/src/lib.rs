//! Offline drop-in shim for the `rand` crate facade.
//!
//! The build container has no access to crates.io, so the workspace ships
//! this minimal implementation of the exact `rand` 0.8 API surface it
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets. Streams are
//! deterministic per seed (which is all the filters rely on) but are not
//! guaranteed to be bit-identical to upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface: the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types drawable uniformly from a bounded span (the shim's
/// stand-in for `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// `hi - lo` as an unsigned 64-bit span (`lo <= hi`).
    fn span(lo: Self, hi: Self) -> u64;
    /// `lo + offset`, where `offset <= span(lo, hi)`.
    fn offset(lo: Self, offset: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn span(lo: Self, hi: Self) -> u64 {
                (hi as i128 - lo as i128) as u64
            }
            fn offset(lo: Self, offset: u64) -> Self {
                lo.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly to a `T` by [`Rng::gen_range`].
///
/// Mirrors real `rand`'s design: a *single* blanket impl per range shape
/// so type inference unifies `T` with the range's literal type, letting
/// `buckets[rng.gen_range(0..4)]` infer `usize` from the indexing context.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        debug_assert!(self.start < self.end, "cannot sample empty range");
        let span = T::span(self.start, self.end);
        if span == 0 {
            // Degenerate range (debug-asserted above): clamp to start
            // rather than divide by zero in release builds.
            return self.start;
        }
        T::offset(self.start, rng.next_u64() % span)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        debug_assert!(lo <= hi, "cannot sample empty range");
        let span = T::span(lo, hi);
        if span == u64::MAX {
            return T::offset(lo, rng.next_u64());
        }
        T::offset(lo, rng.next_u64() % (span + 1))
    }
}

/// The subset of `rand::Rng` the workspace calls.
pub trait Rng {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
        // 53 random mantissa bits, exactly like rand's standard uniform.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the shim's stand-in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(0..13usize);
            assert!(v < 13);
            let w = rng.gen_range(5..=9u32);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
