//! Vertical-hashing variants of classic frequency sketches.
//!
//! Section III-C of the VCF paper observes that "most current sketch data
//! structures, such as Count-Min Sketch […] have to execute two or more
//! hash calculations to index the corresponding blocks. By contrast,
//! k-VCF only requires one hash computation", and positions generalized
//! vertical hashing as "a methodology to replace independent hash
//! functions used by other sketches while still guaranteeing the
//! randomness of the output."
//!
//! This crate realizes that claim:
//!
//! * [`ClassicCountMin`] — the textbook Count-Min sketch (Cormode &
//!   Muthukrishnan 2005) with `d` independent row hashes.
//! * [`VerticalCountMin`] — a Count-Min sketch whose `d` row columns are
//!   all derived from **one** hash computation via generalized vertical
//!   hashing (Equ. 6): row `e` uses column `c1 ⊕ (hᶠ ∧ bm_e)`.
//!
//! * [`VerticalBloomFilter`] — a Bloom filter whose `k` probe positions
//!   come from one hash computation via the same masking trick.
//!
//! All variants keep their structural guarantees (Count-Min never
//! undercounts; Bloom never false-negatives); the tests and the
//! `sketch_ablation` bench quantify the accuracy/speed trade.
//!
//! The crate also hosts the **frozen tier** of the filter lifecycle:
//!
//! * [`BinaryFuse8`] / [`BinaryFuse16`] — immutable 3-wise binary fuse
//!   filters built incrementally ([`FuseBuilder`]) from a VCF's
//!   canonical coset keys, ~9 (resp. ~18) bits/key — the generation
//!   type behind `vcf-core`'s `TieredFilter`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bloom_vertical;
mod count_min;
mod fuse;

pub use bloom_vertical::VerticalBloomFilter;
pub use count_min::{ClassicCountMin, CountMin, VerticalCountMin};
pub use fuse::{BinaryFuse, BinaryFuse16, BinaryFuse8, FuseBuilder, FuseLane};
