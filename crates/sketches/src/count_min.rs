//! Count-Min sketches: classic (d hashes) and vertical (one hash).

use vcf_hash::{mix64, HashKind, SplitMix64};
use vcf_traits::BuildError;

/// Common behaviour of both Count-Min variants.
pub trait CountMin {
    /// Adds `count` occurrences of `item`.
    fn increment(&mut self, item: &[u8], count: u64);

    /// Point-query estimate: an upper bound on the true count
    /// (Count-Min never undercounts).
    fn estimate(&self, item: &[u8]) -> u64;

    /// Number of rows `d`.
    fn depth(&self) -> usize;

    /// Columns per row `w`.
    fn width(&self) -> usize;

    /// Total increments absorbed (`‖f‖₁`).
    fn total(&self) -> u64;

    /// The additive error bound `ε·N` that holds with probability
    /// `1 − (1/2)^d` under the standard analysis (`ε = e/w` for classic;
    /// the vertical variant targets the same operating point).
    fn error_bound(&self) -> f64 {
        core::f64::consts::E / self.width() as f64 * self.total() as f64
    }
}

fn validate(width: usize, depth: usize) -> Result<(), BuildError> {
    if !width.is_power_of_two() || width < 4 {
        return Err(BuildError::InvalidConfig {
            reason: format!("width must be a power of two >= 4, got {width}"),
        });
    }
    if depth == 0 || depth > 16 {
        return Err(BuildError::InvalidConfig {
            reason: format!("depth must be 1..=16, got {depth}"),
        });
    }
    Ok(())
}

/// The textbook Count-Min sketch: `d` rows, each indexed by an
/// independent hash of the item.
///
/// # Examples
///
/// ```
/// use vcf_sketches::{ClassicCountMin, CountMin};
///
/// let mut cm = ClassicCountMin::new(1 << 10, 4, 7)?;
/// cm.increment(b"x", 3);
/// assert!(cm.estimate(b"x") >= 3);
/// assert_eq!(cm.estimate(b"never-seen") , 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClassicCountMin {
    rows: Vec<Vec<u64>>,
    seeds: Vec<u64>,
    hash: HashKind,
    total: u64,
}

impl ClassicCountMin {
    /// Builds a sketch of `depth` rows × `width` columns.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when `width` is not a power of two ≥ 4 or
    /// `depth` is outside `1..=16`.
    pub fn new(width: usize, depth: usize, seed: u64) -> Result<Self, BuildError> {
        validate(width, depth)?;
        let mut gen = SplitMix64::new(seed);
        Ok(Self {
            rows: vec![vec![0u64; width]; depth],
            seeds: (0..depth).map(|_| gen.next_u64()).collect(),
            hash: HashKind::Fnv1a,
            total: 0,
        })
    }

    #[inline]
    fn column(&self, row: usize, item: &[u8]) -> usize {
        // One full hash computation per row: the cost vertical hashing
        // removes. Seed-mixing the item hash per row keeps the rows
        // pairwise independent in practice.
        let h = self.hash.hash64(item);
        (mix64(h ^ self.seeds[row]) as usize) & (self.rows[row].len() - 1)
    }
}

impl CountMin for ClassicCountMin {
    fn increment(&mut self, item: &[u8], count: u64) {
        for row in 0..self.rows.len() {
            let column = self.column(row, item);
            self.rows[row][column] = self.rows[row][column].saturating_add(count);
        }
        self.total += count;
    }

    fn estimate(&self, item: &[u8]) -> u64 {
        (0..self.rows.len())
            .map(|row| self.rows[row][self.column(row, item)])
            .min()
            .unwrap_or(0)
    }

    fn depth(&self) -> usize {
        self.rows.len()
    }

    fn width(&self) -> usize {
        self.rows[0].len()
    }

    fn total(&self) -> u64 {
        self.total
    }
}

/// A Count-Min sketch indexed by **generalized vertical hashing**: one
/// hash of the item yields a base column `c₁` and an offset fragment
/// `hᶠ`; row `e` uses column `c₁ ⊕ (hᶠ ∧ bm_e)` with per-row bitmasks
/// (Equ. 6 of the VCF paper, applied to sketch rows instead of candidate
/// buckets).
///
/// One hash computation per update/query instead of `d` — the paper's
/// Section III-C speed argument — at the cost of weaker cross-row
/// independence (rows share the fragment `hᶠ`; masks keep their projected
/// bits distinct). The Count-Min *upper-bound* guarantee is structural and
/// survives unchanged; accuracy in practice is compared in the tests and
/// the `sketch_ablation` bench.
///
/// # Examples
///
/// ```
/// use vcf_sketches::{CountMin, VerticalCountMin};
///
/// let mut cm = VerticalCountMin::new(1 << 10, 4, 7)?;
/// cm.increment(b"flow", 2);
/// cm.increment(b"flow", 1);
/// assert!(cm.estimate(b"flow") >= 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct VerticalCountMin {
    rows: Vec<Vec<u64>>,
    /// Per-row offset masks over the column-index domain; `masks[0] = 0`
    /// (row 0 uses the base column), the rest are distinct and non-empty.
    masks: Vec<u64>,
    hash: HashKind,
    total: u64,
}

impl VerticalCountMin {
    /// Builds a sketch of `depth` rows × `width` columns with
    /// deterministic per-row masks derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry, or when `width` is
    /// too small to host `depth − 1` distinct non-trivial masks.
    pub fn new(width: usize, depth: usize, seed: u64) -> Result<Self, BuildError> {
        validate(width, depth)?;
        let domain = width as u64 - 1;
        if depth as u64 > domain {
            return Err(BuildError::InvalidConfig {
                reason: format!("cannot derive {depth} distinct masks over width {width}"),
            });
        }
        let mut masks = vec![0u64];
        let mut gen = SplitMix64::new(seed ^ 0x536b_6574); // "Sket"
        while masks.len() < depth {
            let candidate = gen.next_u64() & domain;
            if candidate != 0 && !masks.contains(&candidate) {
                masks.push(candidate);
            }
        }
        Ok(Self {
            rows: vec![vec![0u64; width]; depth],
            masks,
            hash: HashKind::Fnv1a,
            total: 0,
        })
    }

    /// The per-row columns for an item, from one hash computation.
    #[inline]
    fn columns(&self, item: &[u8]) -> impl Iterator<Item = usize> + '_ {
        let h = self.hash.hash64(item);
        let width_mask = self.rows[0].len() as u64 - 1;
        let base = h & width_mask;
        // The offset fragment plays the role of hash(η) in Equ. 6. Mixing
        // the high half keeps it independent of the base column.
        let fragment = mix64(h >> 32);
        self.masks
            .iter()
            .map(move |mask| (base ^ (fragment & mask)) as usize)
    }
}

impl CountMin for VerticalCountMin {
    fn increment(&mut self, item: &[u8], count: u64) {
        let columns: Vec<usize> = self.columns(item).collect();
        for (row, column) in columns.into_iter().enumerate() {
            self.rows[row][column] = self.rows[row][column].saturating_add(count);
        }
        self.total += count;
    }

    fn estimate(&self, item: &[u8]) -> u64 {
        self.columns(item)
            .enumerate()
            .map(|(row, column)| self.rows[row][column])
            .min()
            .unwrap_or(0)
    }

    fn depth(&self) -> usize {
        self.rows.len()
    }

    fn width(&self) -> usize {
        self.rows[0].len()
    }

    fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcf_hash::SplitMix64;

    fn key(i: u64) -> Vec<u8> {
        format!("cm-{i}").into_bytes()
    }

    fn sketches() -> (ClassicCountMin, VerticalCountMin) {
        (
            ClassicCountMin::new(1 << 12, 4, 9).unwrap(),
            VerticalCountMin::new(1 << 12, 4, 9).unwrap(),
        )
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(ClassicCountMin::new(100, 4, 1).is_err()); // not pow2
        assert!(ClassicCountMin::new(1 << 10, 0, 1).is_err());
        assert!(ClassicCountMin::new(1 << 10, 17, 1).is_err());
        assert!(VerticalCountMin::new(100, 4, 1).is_err());
        assert!(VerticalCountMin::new(1 << 10, 0, 1).is_err());
    }

    #[test]
    fn never_undercounts() {
        let (mut classic, mut vertical) = sketches();
        let mut rng = SplitMix64::new(7);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let k = rng.next_below(500);
            let c = 1 + rng.next_below(4);
            classic.increment(&key(k), c);
            vertical.increment(&key(k), c);
            *truth.entry(k).or_insert(0u64) += c;
        }
        for (k, &t) in &truth {
            assert!(
                classic.estimate(&key(*k)) >= t,
                "classic undercounted key {k}"
            );
            assert!(
                vertical.estimate(&key(*k)) >= t,
                "vertical undercounted key {k}"
            );
        }
    }

    #[test]
    fn error_within_bound_for_both() {
        let (mut classic, mut vertical) = sketches();
        let mut rng = SplitMix64::new(11);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let k = rng.next_below(2_000);
            classic.increment(&key(k), 1);
            vertical.increment(&key(k), 1);
            *truth.entry(k).or_insert(0u64) += 1;
        }
        let bound = classic.error_bound();
        let mut classic_bad = 0usize;
        let mut vertical_bad = 0usize;
        for (k, &t) in &truth {
            if (classic.estimate(&key(*k)) - t) as f64 > bound {
                classic_bad += 1;
            }
            if (vertical.estimate(&key(*k)) - t) as f64 > bound {
                vertical_bad += 1;
            }
        }
        // The ε·N bound holds w.p. 1 − 2^-d per query; allow a small tail.
        let tolerance = truth.len() / 8;
        assert!(
            classic_bad <= tolerance,
            "classic exceeded bound {classic_bad} times"
        );
        assert!(
            vertical_bad <= tolerance,
            "vertical exceeded bound {vertical_bad} times"
        );
    }

    #[test]
    fn vertical_accuracy_comparable_to_classic() {
        let (mut classic, mut vertical) = sketches();
        let mut rng = SplitMix64::new(13);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..100_000 {
            let k = rng.next_below(5_000);
            classic.increment(&key(k), 1);
            vertical.increment(&key(k), 1);
            *truth.entry(k).or_insert(0u64) += 1;
        }
        let mean_err = |est: &dyn Fn(&[u8]) -> u64| {
            truth
                .iter()
                .map(|(k, &t)| (est(&key(*k)) - t) as f64)
                .sum::<f64>()
                / truth.len() as f64
        };
        let classic_err = mean_err(&|k| classic.estimate(k));
        let vertical_err = mean_err(&|k| vertical.estimate(k));
        // Correlated rows cost accuracy; require same order of magnitude.
        assert!(
            vertical_err <= classic_err * 3.0 + 1.0,
            "vertical error {vertical_err} too far above classic {classic_err}"
        );
    }

    #[test]
    fn unseen_items_mostly_estimate_zero_when_sparse() {
        let (mut classic, mut vertical) = sketches();
        for i in 0..100u64 {
            classic.increment(&key(i), 1);
            vertical.increment(&key(i), 1);
        }
        let zeros_classic = (1000..2000u64)
            .filter(|i| classic.estimate(&key(*i)) == 0)
            .count();
        let zeros_vertical = (1000..2000u64)
            .filter(|i| vertical.estimate(&key(*i)) == 0)
            .count();
        assert!(zeros_classic > 950);
        assert!(zeros_vertical > 950);
    }

    #[test]
    fn masks_are_distinct_and_rows_disagree() {
        let v = VerticalCountMin::new(1 << 10, 8, 3).unwrap();
        let mut masks = v.masks.clone();
        masks.sort_unstable();
        masks.dedup();
        assert_eq!(masks.len(), 8);
        // Different rows must (almost always) hit different columns.
        let columns: Vec<usize> = v.columns(b"probe").collect();
        let mut unique = columns.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() >= 6, "rows too correlated: {columns:?}");
    }

    #[test]
    fn depth_width_total_accessors() {
        let (mut classic, mut vertical) = sketches();
        assert_eq!(classic.depth(), 4);
        assert_eq!(vertical.width(), 1 << 12);
        classic.increment(b"a", 5);
        vertical.increment(b"a", 5);
        assert_eq!(classic.total(), 5);
        assert_eq!(vertical.total(), 5);
    }
}
