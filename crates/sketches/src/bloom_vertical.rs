//! A Bloom filter indexed by vertical hashing: `k` probe positions from
//! **one** hash computation.
//!
//! The classic Bloom filter computes `k` independent hashes per operation
//! (or two, with Kirsch–Mitzenmacher double hashing). Applying the VCF
//! paper's Section III-C methodology instead: one hash yields a base
//! position and an offset fragment, and `k` bitmasks project the fragment
//! onto `k` positions — `p_e = base ⊕ (hᶠ ∧ bm_e)` (Equ. 6 over the bit
//! array instead of over buckets).

use vcf_hash::{mix64, HashKind, SplitMix64};
use vcf_traits::BuildError;

/// A vertical-hashing Bloom filter: `k` probe bits per item from a single
/// hash computation.
///
/// Like any Bloom filter: no false negatives, no deletion. The positions
/// of one item are correlated through the shared fragment, which costs a
/// little accuracy relative to independent hashing; the tests quantify it
/// and the `sketch_ablation` bench measures the speedup.
///
/// # Examples
///
/// ```
/// use vcf_sketches::VerticalBloomFilter;
///
/// let mut bf = VerticalBloomFilter::for_items(10_000, 0.01, 7)?;
/// bf.insert(b"event");
/// assert!(bf.contains(b"event"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct VerticalBloomFilter {
    words: Vec<u64>,
    bits: usize,
    masks: Vec<u64>,
    hash: HashKind,
    items: usize,
}

impl VerticalBloomFilter {
    /// Builds a filter with `bits` positions (power of two) and `hashes`
    /// probe positions per item.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when `bits` is not a power of two ≥ 64 or
    /// `hashes` is outside `1..=24`.
    pub fn new(bits: usize, hashes: u32, seed: u64) -> Result<Self, BuildError> {
        if !bits.is_power_of_two() || bits < 64 {
            return Err(BuildError::InvalidConfig {
                reason: format!("bit count must be a power of two >= 64, got {bits}"),
            });
        }
        if hashes == 0 || hashes > 24 {
            return Err(BuildError::InvalidConfig {
                reason: format!("hash count must be 1..=24, got {hashes}"),
            });
        }
        let domain = bits as u64 - 1;
        let mut masks = vec![0u64];
        let mut gen = SplitMix64::new(seed ^ 0x0042_4c4f_4f4d); // "BLOOM"
        while masks.len() < hashes as usize {
            let candidate = gen.next_u64() & domain;
            if candidate != 0 && !masks.contains(&candidate) {
                masks.push(candidate);
            }
        }
        Ok(Self {
            words: vec![0u64; bits / 64],
            bits,
            masks,
            hash: HashKind::Fnv1a,
            items: 0,
        })
    }

    /// Optimal-geometry constructor, mirroring the classic BF sizing.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from [`VerticalBloomFilter::new`].
    pub fn for_items(items: usize, fpr: f64, seed: u64) -> Result<Self, BuildError> {
        let n = items.max(1) as f64;
        let fpr = fpr.clamp(1e-12, 0.5);
        let bits = (-n * fpr.ln() / (2f64.ln() * 2f64.ln())).ceil() as usize;
        let bits = bits.max(64).next_power_of_two();
        let hashes = ((bits as f64 / n) * 2f64.ln()).round().clamp(1.0, 24.0) as u32;
        Self::new(bits, hashes, seed)
    }

    /// Bit-array length.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Probe positions per item (`k`).
    pub fn hashes(&self) -> usize {
        self.masks.len()
    }

    /// Items inserted.
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether no items were inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// One hash computation → all `k` positions.
    #[inline]
    fn positions(&self, item: &[u8]) -> impl Iterator<Item = usize> + '_ {
        let h = self.hash.hash64(item);
        let base = h & (self.bits as u64 - 1);
        let fragment = mix64(h >> 17);
        self.masks
            .iter()
            .map(move |mask| (base ^ (fragment & mask)) as usize)
    }

    /// Inserts `item` (never fails; Bloom filters cannot fill up).
    pub fn insert(&mut self, item: &[u8]) {
        let positions: Vec<usize> = self.positions(item).collect();
        debug_assert!(positions.iter().all(|&p| p / 64 < self.words.len()));
        for position in positions {
            self.words[position / 64] |= 1u64 << (position % 64);
        }
        self.items += 1;
    }

    /// Membership test: false positives possible, false negatives not.
    pub fn contains(&self, item: &[u8]) -> bool {
        self.positions(item)
            .all(|p| self.words[p / 64] >> (p % 64) & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("vbf-{i}").into_bytes()
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(VerticalBloomFilter::new(100, 4, 1).is_err());
        assert!(VerticalBloomFilter::new(32, 4, 1).is_err());
        assert!(VerticalBloomFilter::new(1 << 10, 0, 1).is_err());
        assert!(VerticalBloomFilter::new(1 << 10, 25, 1).is_err());
        assert!(VerticalBloomFilter::new(1 << 10, 8, 1).is_ok());
    }

    #[test]
    fn no_false_negatives() {
        let mut bf = VerticalBloomFilter::for_items(20_000, 0.01, 3).unwrap();
        for i in 0..20_000 {
            bf.insert(&key(i));
        }
        for i in 0..20_000 {
            assert!(bf.contains(&key(i)), "item {i} lost");
        }
    }

    #[test]
    fn fpr_within_striking_distance_of_classic() {
        // Correlated positions cost accuracy; require the measured FPR to
        // stay within ~6x of the design target (classic achieves ~1x; the
        // headroom documents the one-hash trade-off honestly).
        let mut bf = VerticalBloomFilter::for_items(30_000, 0.01, 5).unwrap();
        for i in 0..30_000 {
            bf.insert(&key(i));
        }
        let aliens = 100_000u64;
        let fp = (0..aliens)
            .filter(|i| bf.contains(&key(1_000_000 + i)))
            .count();
        let fpr = fp as f64 / aliens as f64;
        assert!(fpr < 0.06, "vertical BF fpr={fpr}");
        assert!(fpr > 1e-5, "suspiciously perfect — geometry bug?");
    }

    #[test]
    fn masks_distinct_and_positions_spread() {
        let bf = VerticalBloomFilter::new(1 << 12, 10, 9).unwrap();
        let mut masks = bf.masks.clone();
        masks.sort_unstable();
        masks.dedup();
        assert_eq!(masks.len(), 10);
        let positions: Vec<usize> = bf.positions(b"probe").collect();
        let mut unique = positions.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() >= 8, "positions too correlated: {positions:?}");
    }

    #[test]
    fn accessors() {
        let mut bf = VerticalBloomFilter::new(1 << 10, 6, 2).unwrap();
        assert_eq!(bf.bits(), 1 << 10);
        assert_eq!(bf.hashes(), 6);
        assert!(bf.is_empty());
        bf.insert(b"x");
        assert_eq!(bf.len(), 1);
    }
}
