//! Immutable 3-wise binary fuse filters — the frozen tier of the filter
//! lifecycle.
//!
//! A cuckoo-family filter earns its insertion machinery on churn-heavy
//! hot data; a generation that has stopped mutating pays cuckoo rent
//! (partial occupancy, eviction headroom) forever. "Xor Filters: Faster
//! and Smaller Than Bloom and Cuckoo Filters" and its binary-fuse
//! successor show an *immutable* set can be ~25% smaller and faster to
//! query: store one `f`-bit lane per array position and arrange, by
//! peeling at construction time, that every key's fingerprint equals the
//! XOR of its three lanes.
//!
//! The variant here is the 3-wise **binary fuse** layout: the three
//! probe positions of a key land in three *consecutive segments* of a
//! small power-of-two length, so a query touches a narrow window instead
//! of the whole array — three loads that usually share a cache page.
//!
//! Construction is *incremental*: [`FuseBuilder`] splits the build into
//! bounded [`step`](FuseBuilder::step) units (mirroring the elastic
//! filter's budgeted bucket-range migration) so a serving thread can
//! amortize a freeze across operations. Keys are 64-bit **canonical
//! coset keys** exported by the hot tier from its stored bits alone
//! (`ScalableVcf::canonical_keys`) — freezing never needs the original
//! items, the paper's partial-key invariant extended to the lifecycle.

use std::collections::HashSet;

use vcf_core::snapshot::{FuseRecord, SnapshotError};
use vcf_hash::mix64;
use vcf_traits::{BuildError, FrozenBuilder, FrozenSet};

/// Keys a unit of incremental construction work visits; sized so one
/// unit costs the same order of magnitude as one migrated bucket-range
/// in the elastic hot tier.
const CHUNK: usize = 512;

/// Hard cap on segment length (matches the reference binary-fuse
/// layout): beyond this, larger segments stop helping locality.
const MAX_SEGMENT_LENGTH: u32 = 1 << 18;

/// A lane word of the fuse array: the stored per-key fingerprint width.
///
/// Implemented for [`u8`] (ε ≈ 2⁻⁸, ~9 bits/key) and [`u16`]
/// (ε ≈ 2⁻¹⁶, ~18 bits/key).
pub trait FuseLane: Copy + Eq + Default {
    /// Lane width in bits.
    const BITS: u32;

    /// Truncates a mixed hash to one lane — the key's fingerprint.
    fn from_hash(h: u64) -> Self;

    /// XOR of two lanes.
    fn xor(self, other: Self) -> Self;

    /// Widens to `u16` for serialization (lanes are at most 16 bits).
    fn to_u16(self) -> u16;

    /// Narrows from `u16` for deserialization.
    fn from_u16(v: u16) -> Self;
}

impl FuseLane for u8 {
    const BITS: u32 = 8;

    #[inline]
    fn from_hash(h: u64) -> Self {
        h as u8
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }

    #[inline]
    fn to_u16(self) -> u16 {
        u16::from(self)
    }

    #[inline]
    fn from_u16(v: u16) -> Self {
        v as u8
    }
}

impl FuseLane for u16 {
    const BITS: u32 = 16;

    #[inline]
    fn from_hash(h: u64) -> Self {
        h as u16
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }

    #[inline]
    fn to_u16(self) -> u16 {
        self
    }

    #[inline]
    fn from_u16(v: u16) -> Self {
        v
    }
}

/// The segment geometry of a fuse array, fixed by the key count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Layout {
    segment_length: u32,
    segment_length_mask: u32,
    segment_count_length: u32,
    array_length: u32,
}

impl Layout {
    /// Geometry for `n` distinct keys, following the reference
    /// binary-fuse sizing: segment length grows like `3.33^…` with `n`,
    /// and the over-provisioning factor shrinks toward 1.125 (≈ 9
    /// bits/key for 8-bit lanes) as `n` grows.
    fn for_keys(n: usize) -> Self {
        let size = n.max(1) as f64;
        let segment_length = if n < 4 {
            4
        } else {
            let exp = (size.ln() / 3.33_f64.ln() + 2.25).floor() as u32;
            (1u32 << exp.min(31)).clamp(4, MAX_SEGMENT_LENGTH)
        };
        let size_factor = if n <= 1 {
            2.0
        } else {
            (0.875 + 0.25 * 1.0e6_f64.ln() / size.ln()).max(1.125)
        };
        let capacity = (size * size_factor).round() as u64;
        let init_segment_count = (capacity.div_ceil(u64::from(segment_length)).max(3) - 2).max(1);
        let init_segment_count = u32::try_from(init_segment_count).unwrap_or(u32::MAX >> 20);
        Self {
            segment_length,
            segment_length_mask: segment_length - 1,
            segment_count_length: init_segment_count * segment_length,
            array_length: (init_segment_count + 2) * segment_length,
        }
    }

    /// The three probe positions of a mixed hash: a window start in
    /// `[0, segment_count_length)` by multiply-high, then one position
    /// in each of three consecutive segments. Every result is provably
    /// `< array_length` (the window start is below
    /// `segment_count_length` and the XORs only permute within one
    /// segment), which is what lets the query path index without bounds
    /// checks.
    #[inline]
    fn positions(&self, h: u64) -> [usize; 3] {
        let hi = ((u128::from(h) * u128::from(self.segment_count_length)) >> 64) as u64;
        let h0 = hi;
        let mut h1 = h0 + u64::from(self.segment_length);
        let h2 = h1 + u64::from(self.segment_length);
        h1 ^= (h >> 18) & u64::from(self.segment_length_mask);
        let h2 = h2 ^ (h & u64::from(self.segment_length_mask));
        [h0 as usize, h1 as usize, h2 as usize]
    }
}

/// Mixes a canonical key with the construction seed. `mix64` is a
/// bijection, so distinct keys stay distinct under every seed — seed
/// retries only re-randomize the *positions*, never merge keys.
#[inline]
fn mix_key(key: u64, seed: u64) -> u64 {
    mix64(key ^ seed)
}

/// The lane fingerprint of a mixed hash: fold the high half down so the
/// fingerprint and the (high-bits-derived) window start stay nearly
/// independent.
#[inline]
fn fingerprint_of<L: FuseLane>(h: u64) -> L {
    L::from_hash(h ^ (h >> 32))
}

/// Advances the construction seed after a failed peel attempt.
#[inline]
fn next_seed(seed: u64) -> u64 {
    mix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

/// An immutable 3-wise binary fuse filter over 64-bit canonical keys.
///
/// Built once from a staged key set (via [`FuseBuilder`], usually
/// behind the [`FrozenSet`] trait), then queried forever: no inserts,
/// no deletes, no false negatives for any staged key, and a false
/// positive rate of ≈ `2^-L::BITS`. Storage is `array_length` lanes ≈
/// `1.125 × keys` for large sets — ~9 bits/key at 8-bit lanes, ~25%
/// below a cuckoo table's `f / α` with headroom.
///
/// # Examples
///
/// ```
/// use vcf_sketches::BinaryFuse8;
///
/// let keys: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
/// let fuse = BinaryFuse8::from_keys(&keys, 0x5eed)?;
/// assert!(keys.iter().all(|&k| fuse.contains_key(k)));
/// # Ok::<(), vcf_traits::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryFuse<L: FuseLane> {
    seed: u64,
    layout: Layout,
    lanes: Vec<L>,
    keys: usize,
}

/// 8-bit-lane binary fuse: ε ≈ 2⁻⁸ at ~9 bits/key — the frozen-tier
/// default.
pub type BinaryFuse8 = BinaryFuse<u8>;

/// 16-bit-lane binary fuse: ε ≈ 2⁻¹⁶ at ~18 bits/key.
pub type BinaryFuse16 = BinaryFuse<u16>;

impl<L: FuseLane> BinaryFuse<L> {
    /// Bulk-builds a fuse filter from a key slice (duplicates are
    /// deduplicated — a frozen generation has set semantics), driving
    /// the incremental builder to completion in one call.
    ///
    /// # Errors
    ///
    /// Construction retries with fresh seeds until peeling succeeds, so
    /// failure is cryptographically improbable; the `Result` exists
    /// because [`FrozenBuilder::finish`] is fallible by contract.
    pub fn from_keys(keys: &[u64], seed: u64) -> Result<Self, BuildError> {
        let mut builder = Self::begin(seed);
        for &key in keys {
            builder.push(key);
        }
        builder.seal();
        while builder.backlog() > 0 {
            builder.step(usize::MAX);
        }
        builder.finish()
    }

    // lint: hot-path
    /// Membership test. No false negatives for staged keys; false
    /// positives at ≈ `2^-L::BITS`.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        if self.keys == 0 {
            return false;
        }
        let h = mix_key(key, self.seed);
        let fp = fingerprint_of::<L>(h);
        let [h0, h1, h2] = self.layout.positions(h);
        // Positions are < array_length by construction (see
        // `Layout::positions`); the decoder re-validates the invariant
        // for restored snapshots.
        debug_assert!(h2.max(h1).max(h0) < self.lanes.len());
        fp == self.lanes[h0].xor(self.lanes[h1]).xor(self.lanes[h2])
    }

    // lint: hot-path
    /// Batched membership: one answer per key, in order. Two-pass —
    /// hash every key and resolve its three positions first, then probe
    /// — so the position arithmetic of key *i+1* overlaps the lane
    /// loads of key *i* instead of serialising on cache misses.
    pub fn contains_keys(&self, keys: &[u64]) -> Vec<bool> {
        if self.keys == 0 {
            return vec![false; keys.len()];
        }
        let mut probes = Vec::with_capacity(keys.len());
        for &key in keys {
            let h = mix_key(key, self.seed);
            probes.push((fingerprint_of::<L>(h), self.layout.positions(h)));
        }
        let mut out = Vec::with_capacity(keys.len());
        for &(fp, [h0, h1, h2]) in &probes {
            debug_assert!(h2.max(h1).max(h0) < self.lanes.len());
            out.push(fp == self.lanes[h0].xor(self.lanes[h1]).xor(self.lanes[h2]));
        }
        out
    }

    /// Number of distinct keys frozen into the filter.
    pub fn len(&self) -> usize {
        self.keys
    }

    /// Whether the filter holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys == 0
    }

    /// Heap bytes backing the lane array.
    pub fn storage_bytes(&self) -> usize {
        self.lanes.len() * (L::BITS as usize / 8)
    }

    /// Total lane count (`≈ 1.125 × len` for large sets).
    pub fn array_length(&self) -> usize {
        self.lanes.len()
    }

    /// The construction seed that peeling succeeded with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Serializes to a versioned [`FuseRecord`] (the `FUZ1` format):
    /// layout parameters plus the lane words verbatim, so the restored
    /// filter answers every query — including every false positive —
    /// identically.
    pub fn to_record(&self) -> FuseRecord {
        let mut lane_bytes = Vec::with_capacity(self.storage_bytes());
        for lane in &self.lanes {
            let v = lane.to_u16();
            lane_bytes.push(v as u8);
            if L::BITS == 16 {
                lane_bytes.push((v >> 8) as u8);
            }
        }
        FuseRecord {
            lane_bits: L::BITS,
            seed: self.seed,
            segment_length: self.layout.segment_length,
            segment_count_length: self.layout.segment_count_length,
            array_length: self.layout.array_length,
            keys: self.keys as u64,
            lanes: lane_bytes,
        }
    }

    /// Encodes to `FUZ1` snapshot bytes ([`FuseRecord::encode`]).
    pub fn to_snapshot(&self) -> Vec<u8> {
        self.to_record().encode()
    }

    /// Restores from a decoded [`FuseRecord`], re-validating every
    /// invariant the unchecked query path relies on (lane width, the
    /// `array_length = segment_count_length + 2·segment_length`
    /// identity, byte-length consistency).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::BadConfig`] when the record's geometry
    /// does not describe a valid fuse array of this lane width.
    pub fn from_record(record: &FuseRecord) -> Result<Self, SnapshotError> {
        if record.lane_bits != L::BITS {
            return Err(SnapshotError::BadConfig(BuildError::InvalidConfig {
                reason: format!(
                    "fuse record has {}-bit lanes, expected {}",
                    record.lane_bits,
                    L::BITS
                ),
            }));
        }
        let sl = record.segment_length;
        if !sl.is_power_of_two()
            || record.array_length != record.segment_count_length + 2 * sl
            || !record.segment_count_length.is_multiple_of(sl)
        {
            return Err(SnapshotError::BadConfig(BuildError::InvalidConfig {
                reason: format!(
                    "fuse record geometry is inconsistent: segment_length {sl}, \
                     segment_count_length {}, array_length {}",
                    record.segment_count_length, record.array_length
                ),
            }));
        }
        let bytes_per_lane = L::BITS as usize / 8;
        if record.lanes.len() != record.array_length as usize * bytes_per_lane {
            return Err(SnapshotError::BadConfig(BuildError::InvalidConfig {
                reason: format!(
                    "fuse record lane payload is {} bytes, geometry implies {}",
                    record.lanes.len(),
                    record.array_length as usize * bytes_per_lane
                ),
            }));
        }
        let lanes = record
            .lanes
            .chunks_exact(bytes_per_lane)
            .map(|c| {
                let lo = u16::from(c[0]);
                let hi = c.get(1).map_or(0u16, |&b| u16::from(b) << 8);
                L::from_u16(lo | hi)
            })
            .collect();
        Ok(Self {
            seed: record.seed,
            layout: Layout {
                segment_length: sl,
                segment_length_mask: sl - 1,
                segment_count_length: record.segment_count_length,
                array_length: record.array_length,
            },
            lanes,
            keys: record.keys as usize,
        })
    }

    /// Decodes `FUZ1` snapshot bytes and restores the filter
    /// bit-exactly.
    ///
    /// # Errors
    ///
    /// Propagates [`FuseRecord::decode`] errors (magic, truncation,
    /// checksum) plus the geometry validation of
    /// [`from_record`](Self::from_record).
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::from_record(&FuseRecord::decode(bytes)?)
    }
}

impl<L: FuseLane> FrozenSet for BinaryFuse<L> {
    type Builder = FuseBuilder<L>;

    fn begin(seed: u64) -> FuseBuilder<L> {
        FuseBuilder::new(seed)
    }

    fn contains_key(&self, key: u64) -> bool {
        BinaryFuse::contains_key(self, key)
    }

    fn contains_keys(&self, keys: &[u64]) -> Vec<bool> {
        BinaryFuse::contains_keys(self, keys)
    }

    fn len(&self) -> usize {
        BinaryFuse::len(self)
    }

    fn storage_bytes(&self) -> usize {
        BinaryFuse::storage_bytes(self)
    }

    fn fingerprint_bits(&self) -> u32 {
        L::BITS
    }
}

/// Construction phases, in order. A failed peel attempt re-seeds and
/// falls back to [`Phase::Count`]; everything else advances forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Accepting keys; no construction work available yet.
    Staging,
    /// Scattering each staged key's hash into the count/xor arrays.
    Count { next: usize },
    /// Scanning the arrays for positions with exactly one key.
    QueueScan { next: usize },
    /// Peeling: repeatedly detach a position that holds a single key.
    Peel,
    /// Writing lanes in reverse peel order.
    Assign { next: usize },
    /// Construction complete; `finish` will succeed.
    Done,
}

/// Incremental binary-fuse construction: stage keys, [`seal`]
/// (computing the layout), then drive bounded [`step`] units until the
/// [`backlog`] reaches zero — the freeze-side mirror of the elastic
/// filter's budgeted migration.
///
/// Peeling is probabilistic: an attempt can fail (the hypergraph has a
/// 2-core), in which case the builder silently re-seeds and restarts
/// counting, growing the backlog transiently. For distinct staged keys
/// the retry succeeds with overwhelming probability per attempt.
///
/// [`seal`]: FrozenBuilder::seal
/// [`step`]: FrozenBuilder::step
/// [`backlog`]: FrozenBuilder::backlog
#[derive(Debug, Clone)]
pub struct FuseBuilder<L: FuseLane> {
    seed: u64,
    staged: Vec<u64>,
    dedup: HashSet<u64>,
    layout: Layout,
    phase: Phase,
    /// Keys mapped to each position this attempt (pure count).
    counts: Vec<u32>,
    /// XOR of the hashes mapped to each position: when a position's
    /// count is 1, its xor IS the remaining key's hash.
    xorhash: Vec<u64>,
    /// Positions whose count just reached 1, pending peeling.
    queue: Vec<u32>,
    /// Peeled `(hash, position)` pairs, in peel order.
    stack: Vec<(u64, u32)>,
    lanes: Vec<L>,
    attempts: u32,
}

impl<L: FuseLane> FuseBuilder<L> {
    fn new(seed: u64) -> Self {
        Self {
            seed,
            staged: Vec::new(),
            dedup: HashSet::new(),
            layout: Layout::for_keys(0),
            phase: Phase::Staging,
            counts: Vec::new(),
            xorhash: Vec::new(),
            queue: Vec::new(),
            stack: Vec::new(),
            lanes: Vec::new(),
            attempts: 0,
        }
    }

    /// Construction attempts so far (1 ⇔ first peel succeeded).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Resets the per-attempt arrays and restarts counting under a
    /// fresh seed. Lanes are untouched — they are only written in the
    /// assign phase, which cannot fail.
    fn restart_attempt(&mut self) {
        self.attempts += 1;
        self.seed = next_seed(self.seed);
        self.counts.fill(0);
        self.xorhash.fill(0);
        self.queue.clear();
        self.stack.clear();
        self.phase = Phase::Count { next: 0 };
    }

    fn unit_count(&mut self, next: usize) {
        let end = (next + CHUNK).min(self.staged.len());
        for i in next..end {
            // `i` and the three positions are in range by construction;
            // re-checked here so the release build stays branch-free.
            debug_assert!(i < self.staged.len());
            let h = mix_key(self.staged[i], self.seed);
            for pos in self.layout.positions(h) {
                debug_assert!(pos < self.counts.len());
                self.counts[pos] += 1;
                self.xorhash[pos] ^= h;
            }
        }
        self.phase = if end == self.staged.len() {
            Phase::QueueScan { next: 0 }
        } else {
            Phase::Count { next: end }
        };
    }

    fn unit_queue_scan(&mut self, next: usize) {
        let end = (next + 4 * CHUNK).min(self.counts.len());
        for pos in next..end {
            debug_assert!(pos < self.counts.len());
            if self.counts[pos] == 1 {
                self.queue.push(pos as u32);
            }
        }
        self.phase = if end == self.counts.len() {
            Phase::Peel
        } else {
            Phase::QueueScan { next: end }
        };
    }

    fn unit_peel(&mut self) {
        for _ in 0..CHUNK {
            let Some(pos) = self.queue.pop() else {
                break;
            };
            let pos = pos as usize;
            debug_assert!(pos < self.counts.len());
            if self.counts[pos] != 1 {
                continue; // stale entry: peeled past it already
            }
            let h = self.xorhash[pos];
            self.stack.push((h, pos as u32));
            for p in self.layout.positions(h) {
                debug_assert!(p < self.counts.len());
                self.counts[p] -= 1;
                self.xorhash[p] ^= h;
                if self.counts[p] == 1 {
                    self.queue.push(p as u32);
                }
            }
        }
        if self.queue.is_empty() {
            if self.stack.len() == self.staged.len() {
                self.phase = Phase::Assign { next: 0 };
            } else {
                // The remaining hypergraph has a 2-core: this seed
                // cannot be peeled. Re-seed and start over.
                self.restart_attempt();
            }
        }
    }

    fn unit_assign(&mut self, next: usize) {
        let end = (next + CHUNK).min(self.stack.len());
        // Reverse peel order: by the time a pair is assigned, its two
        // sibling positions hold their final lanes (or will never be
        // written, staying zero), so XOR closes the equation exactly.
        for i in next..end {
            debug_assert!(self.stack.len() > i);
            let (h, pos) = self.stack[self.stack.len() - 1 - i];
            let pos = pos as usize;
            let fp = fingerprint_of::<L>(h);
            let [h0, h1, h2] = self.layout.positions(h);
            debug_assert!(h2.max(h1).max(h0) < self.lanes.len() && pos < self.lanes.len());
            let others = self.lanes[h0].xor(self.lanes[h1]).xor(self.lanes[h2]);
            self.lanes[pos] = fp.xor(others);
        }
        self.phase = if end == self.stack.len() {
            Phase::Done
        } else {
            Phase::Assign { next: end }
        };
    }

    /// Performs one bounded unit of work. Returns `false` when no work
    /// is available (unsealed or done).
    fn step_one(&mut self) -> bool {
        match self.phase {
            Phase::Staging | Phase::Done => false,
            Phase::Count { next } => {
                self.unit_count(next);
                true
            }
            Phase::QueueScan { next } => {
                self.unit_queue_scan(next);
                true
            }
            Phase::Peel => {
                self.unit_peel();
                true
            }
            Phase::Assign { next } => {
                self.unit_assign(next);
                true
            }
        }
    }

    fn units(n: usize) -> usize {
        n.div_ceil(CHUNK)
    }

    /// Remaining units for the current phase and every later one; ≥ 1
    /// for every phase except `Done` so `backlog() == 0` is exactly the
    /// completion test (`Staging` reports the full pipeline estimate).
    fn estimate_backlog(&self) -> usize {
        let keys = self.staged.len();
        let scan_units = |from: usize, len: usize| len.saturating_sub(from).div_ceil(4 * CHUNK);
        let array = match self.phase {
            Phase::Staging => Layout::for_keys(keys).array_length as usize,
            _ => self.counts.len(),
        };
        let full_scan = scan_units(0, array);
        match self.phase {
            Phase::Staging => (Self::units(keys) + full_scan + 2 * Self::units(keys)).max(1),
            Phase::Count { next } => {
                Self::units(keys - next) + full_scan + 2 * Self::units(keys).max(1)
            }
            Phase::QueueScan { next } => {
                scan_units(next, array).max(1)
                    + Self::units(keys - self.stack.len()).max(1)
                    + Self::units(keys)
            }
            Phase::Peel => Self::units(keys - self.stack.len()).max(1) + Self::units(keys),
            Phase::Assign { next } => Self::units(self.stack.len() - next).max(1),
            Phase::Done => 0,
        }
    }
}

impl<L: FuseLane> FrozenBuilder for FuseBuilder<L> {
    type Set = BinaryFuse<L>;

    fn push(&mut self, key: u64) {
        if matches!(self.phase, Phase::Staging) && self.dedup.insert(key) {
            self.staged.push(key);
        }
    }

    fn seal(&mut self) {
        if !matches!(self.phase, Phase::Staging) {
            return;
        }
        self.layout = Layout::for_keys(self.staged.len());
        let len = self.layout.array_length as usize;
        self.counts = vec![0; len];
        self.xorhash = vec![0; len];
        self.lanes = vec![L::default(); len];
        self.queue = Vec::new();
        self.stack = Vec::with_capacity(self.staged.len());
        self.attempts = 1;
        self.phase = Phase::Count { next: 0 };
    }

    fn step(&mut self, units: usize) -> usize {
        let mut done = 0;
        while done < units {
            if !self.step_one() {
                break;
            }
            done += 1;
        }
        done
    }

    fn backlog(&self) -> usize {
        self.estimate_backlog()
    }

    fn staged(&self) -> usize {
        self.staged.len()
    }

    fn finish(self) -> Result<BinaryFuse<L>, BuildError> {
        if !matches!(self.phase, Phase::Done) {
            return Err(BuildError::InvalidConfig {
                reason: format!(
                    "fuse construction incomplete: {} backlog units remain (call step first)",
                    self.estimate_backlog()
                ),
            });
        }
        Ok(BinaryFuse {
            seed: self.seed,
            layout: self.layout,
            lanes: self.lanes,
            keys: self.staged.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        // Distinct by construction: mix64 is a bijection.
        (0..n).map(|i| mix64(i.wrapping_add(0x5eed))).collect()
    }

    #[test]
    fn every_staged_key_is_found() {
        for n in [0u64, 1, 2, 3, 10, 100, 1000, 10_000] {
            let ks = keys(n);
            let fuse = BinaryFuse8::from_keys(&ks, 42).unwrap();
            assert_eq!(fuse.len(), n as usize);
            for &k in &ks {
                assert!(fuse.contains_key(k), "n={n} lost key {k:#x}");
            }
        }
    }

    #[test]
    fn sixteen_bit_lanes_hold_every_key() {
        let ks = keys(5000);
        let fuse = BinaryFuse16::from_keys(&ks, 7).unwrap();
        assert!(ks.iter().all(|&k| fuse.contains_key(k)));
        assert_eq!(fuse.storage_bytes(), fuse.array_length() * 2);
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let fuse = BinaryFuse8::from_keys(&[], 3).unwrap();
        assert!(fuse.is_empty());
        assert!(!fuse.contains_key(0));
        assert!(!fuse.contains_key(u64::MAX));
        assert_eq!(fuse.contains_keys(&[1, 2, 3]), vec![false; 3]);
    }

    #[test]
    fn duplicates_are_deduplicated() {
        let mut ks = keys(500);
        ks.extend(keys(500)); // every key twice — would never peel raw
        let fuse = BinaryFuse8::from_keys(&ks, 9).unwrap();
        assert_eq!(fuse.len(), 500);
        assert!(ks.iter().all(|&k| fuse.contains_key(k)));
    }

    #[test]
    fn batch_matches_serial() {
        let ks = keys(2000);
        let fuse = BinaryFuse8::from_keys(&ks, 11).unwrap();
        let mut probe: Vec<u64> = ks[..100].to_vec();
        probe.extend((0..100).map(|i| mix64(i + 999_999)));
        let batch = fuse.contains_keys(&probe);
        for (i, &k) in probe.iter().enumerate() {
            assert_eq!(batch[i], fuse.contains_key(k));
        }
    }

    #[test]
    fn fpr_is_near_the_lane_model() {
        let ks = keys(20_000);
        let fuse = BinaryFuse8::from_keys(&ks, 13).unwrap();
        let aliens: Vec<u64> = (0..200_000u64)
            .map(|i| mix64(i ^ 0xdead_beef_0000))
            .collect();
        let fp = aliens.iter().filter(|&&k| fuse.contains_key(k)).count();
        let measured = fp as f64 / aliens.len() as f64;
        let model = (2.0f64).powi(-8);
        assert!(
            measured < 2.5 * model && measured > model / 4.0,
            "measured {measured:.6}, model {model:.6}"
        );
    }

    #[test]
    fn bits_per_key_is_near_nine_at_scale() {
        // The size factor converges to 1.125 (9.0 bits/key) at 2^20
        // keys; at this cheaper test size it sits at ≈ 1.17.
        let ks = keys(1 << 17);
        let fuse = BinaryFuse8::from_keys(&ks, 1).unwrap();
        let bits = fuse.storage_bytes() as f64 * 8.0 / ks.len() as f64;
        assert!((8.9..9.6).contains(&bits), "bits/key = {bits:.3}");
    }

    #[test]
    fn construction_is_deterministic() {
        let ks = keys(3000);
        let a = BinaryFuse8::from_keys(&ks, 77).unwrap();
        let b = BinaryFuse8::from_keys(&ks, 77).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn incremental_steps_reach_zero_backlog() {
        let ks = keys(10_000);
        let mut builder = BinaryFuse8::begin(5);
        for &k in &ks {
            builder.push(k);
        }
        assert_eq!(builder.staged(), ks.len());
        builder.seal();
        let mut total = 0;
        while builder.backlog() > 0 {
            let did = builder.step(1);
            assert!(did <= 1);
            total += did;
            assert!(total < 100_000, "no forward progress");
        }
        assert_eq!(builder.step(10), 0, "done builder performs no work");
        let fuse = builder.finish().unwrap();
        assert!(ks.iter().all(|&k| fuse.contains_key(k)));
    }

    #[test]
    fn finish_before_completion_is_an_error() {
        let mut builder = BinaryFuse8::begin(5);
        for &k in &keys(100) {
            builder.push(k);
        }
        builder.seal();
        assert!(builder.backlog() > 0);
        assert!(builder.clone().finish().is_err());
    }

    #[test]
    fn push_after_seal_is_ignored() {
        let mut builder = BinaryFuse8::begin(5);
        builder.push(1);
        builder.seal();
        builder.push(2);
        assert_eq!(builder.staged(), 1);
    }

    #[test]
    fn unsealed_builder_does_no_work() {
        let mut builder = BinaryFuse8::begin(5);
        builder.push(1);
        assert_eq!(builder.step(100), 0);
        assert!(builder.backlog() > 0);
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let ks = keys(4000);
        let fuse = BinaryFuse8::from_keys(&ks, 21).unwrap();
        let restored = BinaryFuse8::from_snapshot(&fuse.to_snapshot()).unwrap();
        assert_eq!(restored, fuse);
        // Identical answers on alien probes too (same false positives).
        for i in 0..5000u64 {
            let k = mix64(i ^ 0xface);
            assert_eq!(restored.contains_key(k), fuse.contains_key(k));
        }
    }

    #[test]
    fn snapshot_round_trips_sixteen_bit() {
        let fuse = BinaryFuse16::from_keys(&keys(1234), 2).unwrap();
        let restored = BinaryFuse16::from_snapshot(&fuse.to_snapshot()).unwrap();
        assert_eq!(restored, fuse);
    }

    #[test]
    fn snapshot_rejects_wrong_lane_width() {
        let fuse = BinaryFuse8::from_keys(&keys(100), 2).unwrap();
        assert!(matches!(
            BinaryFuse16::from_snapshot(&fuse.to_snapshot()),
            Err(SnapshotError::BadConfig(_))
        ));
    }

    #[test]
    fn snapshot_rejects_corrupted_geometry() {
        let fuse = BinaryFuse8::from_keys(&keys(100), 2).unwrap();
        let mut record = fuse.to_record();
        record.segment_count_length += 1; // breaks the array-length identity
        assert!(matches!(
            BinaryFuse8::from_record(&record),
            Err(SnapshotError::BadConfig(_))
        ));
    }

    #[test]
    fn layout_positions_stay_in_bounds() {
        for n in [1usize, 3, 57, 1000, 1 << 16] {
            let layout = Layout::for_keys(n);
            for i in 0..10_000u64 {
                let [h0, h1, h2] = layout.positions(mix64(i));
                let len = layout.array_length as usize;
                assert!(h0 < len && h1 < len && h2 < len, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn frozen_set_trait_surface() {
        let ks = keys(300);
        let mut builder = <BinaryFuse8 as FrozenSet>::begin(1);
        for &k in &ks {
            builder.push(k);
        }
        builder.seal();
        while builder.backlog() > 0 {
            builder.step(4);
        }
        let fuse = builder.finish().unwrap();
        assert_eq!(FrozenSet::len(&fuse), 300);
        assert_eq!(FrozenSet::fingerprint_bits(&fuse), 8);
        assert!(FrozenSet::contains_key(&fuse, ks[0]));
        assert!(FrozenSet::storage_bytes(&fuse) > 0);
    }
}
