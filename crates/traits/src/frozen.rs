//! The freeze/rotate surface: immutable frozen generations and the
//! hot/cold filter lifecycle.
//!
//! A churn-heavy filter earns its cuckoo machinery while data is *hot*;
//! a generation that has stopped mutating pays cuckoo rent (partial
//! occupancy, eviction headroom, per-slot alignment) forever. The traits
//! here let a mutable filter drain its stored fingerprints into an
//! immutable *frozen set* — typically a binary fuse filter, ~25% smaller
//! and faster to query than any cuckoo variant for the same error rate —
//! and let a façade rotate through hot and frozen generations behind the
//! plain [`Filter`] API.
//!
//! Keys cross the freeze boundary as **canonical keys**: 64-bit values a
//! cuckoo-family filter can derive from its *stored bits alone* (bucket
//! coset + fingerprint, Theorem 1), so freezing never needs the original
//! items — the paper's partial-key invariant extended to the lifecycle.

use crate::{BuildError, Filter};

/// An immutable approximate-membership set over 64-bit canonical keys.
///
/// Frozen sets are built once — via the incremental [`FrozenBuilder`] —
/// and never mutated: no inserts, no deletes, no false negatives for any
/// key that was staged. Queries may return false positives at a rate of
/// roughly `2^-fingerprint_bits` (plus whatever identity collisions the
/// canonical-key derivation already carries).
pub trait FrozenSet: Sized {
    /// The staged, incremental construction state for this set.
    type Builder: FrozenBuilder<Set = Self>;

    /// Starts an empty builder. `seed` makes construction deterministic;
    /// implementations may internally advance it when a construction
    /// attempt fails (e.g. binary-fuse peeling retries).
    fn begin(seed: u64) -> Self::Builder;

    /// Membership test for a canonical key. No false negatives for
    /// staged keys.
    fn contains_key(&self, key: u64) -> bool;

    /// Batched membership: one answer per key, in order. The default
    /// delegates to [`contains_key`](Self::contains_key); implementations
    /// override with a two-pass early-touch pipeline so lane loads
    /// overlap instead of serialising on cache misses.
    fn contains_keys(&self, keys: &[u64]) -> Vec<bool> {
        // lint: allow(panic-reachability) — dispatch to an implementor of
        // this very trait; impls live above this crate (vcf-sketches) and
        // their lookup paths carry their own hot-path annotations
        keys.iter().map(|&k| self.contains_key(k)).collect()
    }

    /// Number of distinct canonical keys frozen into the set.
    fn len(&self) -> usize;

    /// Whether the set holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes backing the set — the numerator of the bits-per-item
    /// comparison against the mutable tier.
    fn storage_bytes(&self) -> usize;

    /// Width of the stored per-key fingerprint in bits; the structural
    /// false-positive rate is ≈ `2^-fingerprint_bits`.
    fn fingerprint_bits(&self) -> u32;
}

/// Incremental construction of a [`FrozenSet`], split into bounded work
/// units so a rotation never blocks a serving thread on a full build.
///
/// Lifecycle: [`push`](Self::push) every canonical key (duplicates are
/// deduplicated internally — a frozen generation has set semantics),
/// then [`seal`](Self::seal), then call [`step`](Self::step) until
/// [`backlog`](Self::backlog) reaches zero, then [`finish`](Self::finish).
pub trait FrozenBuilder {
    /// The set this builder produces.
    type Set;

    /// Stages one canonical key. O(1) amortized; duplicate keys are
    /// ignored. Must not be called after [`seal`](Self::seal).
    fn push(&mut self, key: u64);

    /// Marks staging complete; construction work becomes available to
    /// [`step`](Self::step).
    fn seal(&mut self);

    /// Performs at most `units` bounded chunks of construction work and
    /// returns the number actually performed (0 once construction is
    /// complete, or before the builder is sealed). Each unit touches a
    /// bounded number of staged keys, so callers can amortize a build
    /// across serving operations exactly like segment migration.
    fn step(&mut self, units: usize) -> usize;

    /// Estimated construction work units remaining (0 ⇔ the build is
    /// complete and [`finish`](Self::finish) will succeed). A sealed
    /// builder whose construction attempt failed internally re-seeds and
    /// restarts, so the backlog can grow transiently; it reaches zero
    /// with probability 1 for distinct staged keys.
    fn backlog(&self) -> usize;

    /// Number of distinct keys staged so far.
    fn staged(&self) -> usize;

    /// Consumes the builder and returns the finished set.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when called before construction is
    /// complete ([`backlog`](Self::backlog) non-zero).
    fn finish(self) -> Result<Self::Set, BuildError>;
}

/// A [`Filter`] managing a hot/cold lifecycle: one mutable hot tier plus
/// zero or more immutable frozen generations.
///
/// Inserts and deletes hit the hot tier only; lookups fan across all
/// generations newest-first. An explicit [`rotate`](Self::rotate) begins
/// freezing the current hot tier into a new frozen generation; the drain
/// and build are *budgeted* — bounded work per call, amortized across
/// subsequent operations or driven explicitly with
/// [`rotate_step`](Self::rotate_step) — and the rotating tier keeps
/// answering lookups until its frozen replacement is installed, so no
/// key ever flickers absent mid-rotation.
///
/// # Contract
///
/// * `rotate`/`rotate_step` never introduce false negatives: every key
///   acknowledged before a rotation is still found at every intermediate
///   step and after the generation freezes.
/// * `rotate_step(n)` performs at most `n` bounded work units.
/// * Frozen generations are append-frozen: [`Filter::delete`] only
///   removes keys still in the hot tier and returns `false` for keys
///   that have been frozen — the lifecycle analogue of expiring a cold
///   partition rather than editing it.
pub trait LifecycleFilter: Filter {
    /// Begins rotating the current hot tier into a new frozen
    /// generation and installs a fresh, empty hot tier. Returns `false`
    /// (and changes nothing) when the hot tier is empty or a rotation is
    /// already in flight.
    fn rotate(&mut self) -> bool;

    /// Drives an in-flight rotation by at most `units` bounded work
    /// units (hot bucket-ranges collected or construction chunks built),
    /// returning the number performed. Returns 0 when no rotation is in
    /// flight.
    fn rotate_step(&mut self, units: usize) -> usize;

    /// Work units remaining in the in-flight rotation (0 ⇔ idle).
    fn rotation_backlog(&self) -> usize;

    /// Number of fully-frozen generations (excludes the hot tier and
    /// any generation still rotating).
    fn generations(&self) -> usize;

    /// Distinct canonical keys per frozen generation, newest first.
    fn generation_lens(&self) -> Vec<usize>;

    /// Heap bytes backing the frozen generations.
    fn frozen_storage_bytes(&self) -> usize;
}
