//! Bulk-operation conveniences over any [`Filter`].

use crate::{Filter, InsertError};

/// Extension methods available on every filter (blanket-implemented).
///
/// # Examples
///
/// ```
/// use vcf_traits::{Filter, FilterExt, InsertError, Stats};
///
/// # struct Toy(std::collections::HashSet<Vec<u8>>);
/// # impl Filter for Toy {
/// #     fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
/// #         self.0.insert(item.to_vec());
/// #         Ok(())
/// #     }
/// #     fn contains(&self, item: &[u8]) -> bool { self.0.contains(item) }
/// #     fn delete(&mut self, item: &[u8]) -> bool { self.0.remove(item) }
/// #     fn len(&self) -> usize { self.0.len() }
/// #     fn capacity(&self) -> usize { 1 << 20 }
/// #     fn stats(&self) -> Stats { Stats::default() }
/// #     fn reset_stats(&mut self) {}
/// #     fn name(&self) -> String { "toy".into() }
/// # }
/// let mut filter = Toy(Default::default());
/// let keys: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
/// assert_eq!(filter.insert_all(keys.iter().map(Vec::as_slice))?, 10);
/// assert_eq!(filter.count_present(keys.iter().map(Vec::as_slice)), 10);
/// # Ok::<(), InsertError>(())
/// ```
pub trait FilterExt: Filter {
    /// Inserts every item, stopping at the first failure.
    ///
    /// Returns the number of items inserted by *this call* on success.
    ///
    /// # Errors
    ///
    /// Propagates the first [`InsertError`]; items before it remain
    /// stored (insertion is per-item atomic, not batch-atomic).
    fn insert_all<'a, I>(&mut self, items: I) -> Result<usize, InsertError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut stored = 0usize;
        for item in items {
            self.insert(item)?;
            stored += 1;
        }
        Ok(stored)
    }

    /// Inserts every item, skipping failures; returns how many stuck.
    /// Use when approaching capacity is expected (the paper's load-factor
    /// methodology does exactly this).
    fn insert_best_effort<'a, I>(&mut self, items: I) -> usize
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        items
            .into_iter()
            .filter(|item| self.insert(item).is_ok())
            .count()
    }

    /// Number of items the filter reports present.
    fn count_present<'a, I>(&self, items: I) -> usize
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        items.into_iter().filter(|item| self.contains(item)).count()
    }

    /// Deletes every item, returning how many deletions succeeded.
    fn delete_all<'a, I>(&mut self, items: I) -> usize
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        items.into_iter().filter(|item| self.delete(item)).count()
    }
}

impl<F: Filter + ?Sized> FilterExt for F {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stats;
    use std::collections::HashMap;

    /// Minimal exact filter for testing the blanket impl.
    #[derive(Default)]
    struct Exact {
        items: HashMap<Vec<u8>, usize>,
        limit: usize,
        total: usize,
    }

    impl Filter for Exact {
        fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
            if self.total >= self.limit {
                return Err(InsertError::Full { kicks: 0 });
            }
            *self.items.entry(item.to_vec()).or_insert(0) += 1;
            self.total += 1;
            Ok(())
        }

        fn contains(&self, item: &[u8]) -> bool {
            self.items.get(item).copied().unwrap_or(0) > 0
        }

        fn delete(&mut self, item: &[u8]) -> bool {
            match self.items.get_mut(item) {
                Some(count) if *count > 0 => {
                    *count -= 1;
                    self.total -= 1;
                    true
                }
                _ => false,
            }
        }

        fn len(&self) -> usize {
            self.total
        }

        fn capacity(&self) -> usize {
            self.limit
        }

        fn stats(&self) -> Stats {
            Stats::default()
        }

        fn reset_stats(&mut self) {}

        fn name(&self) -> String {
            "exact".into()
        }
    }

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("k{i}").into_bytes()).collect()
    }

    #[test]
    fn insert_all_stops_at_first_failure() {
        let mut f = Exact {
            limit: 5,
            ..Default::default()
        };
        let items = keys(10);
        let result = f.insert_all(items.iter().map(Vec::as_slice));
        assert!(matches!(result, Err(InsertError::Full { .. })));
        assert_eq!(f.len(), 5, "items before the failure must remain");
    }

    #[test]
    fn insert_best_effort_counts_successes() {
        let mut f = Exact {
            limit: 7,
            ..Default::default()
        };
        let items = keys(10);
        assert_eq!(f.insert_best_effort(items.iter().map(Vec::as_slice)), 7);
    }

    #[test]
    fn count_present_and_delete_all() {
        let mut f = Exact {
            limit: 100,
            ..Default::default()
        };
        let items = keys(20);
        assert_eq!(f.insert_all(items.iter().map(Vec::as_slice)).unwrap(), 20);
        assert_eq!(f.count_present(items.iter().map(Vec::as_slice)), 20);
        assert_eq!(f.delete_all(items[..10].iter().map(Vec::as_slice)), 10);
        assert_eq!(f.count_present(items.iter().map(Vec::as_slice)), 10);
    }

    #[test]
    fn works_through_dyn_filter() {
        let mut f: Box<dyn Filter> = Box::new(Exact {
            limit: 3,
            ..Default::default()
        });
        let items = keys(3);
        assert_eq!(f.insert_all(items.iter().map(Vec::as_slice)).unwrap(), 3);
        assert_eq!(f.count_present(items.iter().map(Vec::as_slice)), 3);
    }
}
