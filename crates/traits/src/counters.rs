//! Interior-mutable instrumentation counters.
//!
//! Lookup methods take `&self` but still need to count slot probes for the
//! paper's time-cost analysis (Section V-C measures lookup cost in memory
//! accesses). `Counters` therefore uses relaxed atomics: negligible cost on
//! the hot path, and the filters stay `Send + Sync`.

use crate::{OpCounters, Stats};
use core::sync::atomic::{AtomicU64, Ordering};

/// Atomic mirror of one [`OpCounters`] group.
#[derive(Debug, Default)]
pub(crate) struct AtomicOpCounters {
    calls: AtomicU64,
    slot_probes: AtomicU64,
    bucket_accesses: AtomicU64,
}

impl AtomicOpCounters {
    fn snapshot(&self) -> OpCounters {
        OpCounters {
            calls: self.calls.load(Ordering::Relaxed),
            slot_probes: self.slot_probes.load(Ordering::Relaxed),
            bucket_accesses: self.bucket_accesses.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.slot_probes.store(0, Ordering::Relaxed);
        self.bucket_accesses.store(0, Ordering::Relaxed);
    }
}

/// Atomic instrumentation block embedded in every filter.
///
/// All mutators use relaxed ordering: the counters are statistics, not
/// synchronization, and single-filter experiments read them only after the
/// timed region.
///
/// # Examples
///
/// ```
/// use vcf_traits::Counters;
///
/// let counters = Counters::new();
/// counters.record_insert(3, 1);
/// counters.add_kicks(2);
/// let stats = counters.snapshot();
/// assert_eq!(stats.inserts.calls, 1);
/// assert_eq!(stats.kicks, 2);
/// ```
#[derive(Debug, Default)]
pub struct Counters {
    inserts: AtomicOpCounters,
    lookups: AtomicOpCounters,
    deletes: AtomicOpCounters,
    kicks: AtomicU64,
    failed_inserts: AtomicU64,
    hash_computations: AtomicU64,
}

impl Counters {
    /// Creates a zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one insert call that probed `slot_probes` slots across
    /// `bucket_accesses` buckets.
    #[inline]
    pub fn record_insert(&self, slot_probes: u64, bucket_accesses: u64) {
        self.inserts.calls.fetch_add(1, Ordering::Relaxed);
        self.inserts
            .slot_probes
            .fetch_add(slot_probes, Ordering::Relaxed);
        self.inserts
            .bucket_accesses
            .fetch_add(bucket_accesses, Ordering::Relaxed);
    }

    /// Records `calls` insert calls in aggregate — the bulk-build sweep
    /// flushes its whole tally in one shot instead of paying three
    /// atomic adds per placed item.
    #[inline]
    pub fn record_inserts(&self, calls: u64, slot_probes: u64, bucket_accesses: u64) {
        self.inserts.calls.fetch_add(calls, Ordering::Relaxed);
        self.inserts
            .slot_probes
            .fetch_add(slot_probes, Ordering::Relaxed);
        self.inserts
            .bucket_accesses
            .fetch_add(bucket_accesses, Ordering::Relaxed);
    }

    /// Records one lookup call.
    #[inline]
    pub fn record_lookup(&self, slot_probes: u64, bucket_accesses: u64) {
        self.lookups.calls.fetch_add(1, Ordering::Relaxed);
        self.lookups
            .slot_probes
            .fetch_add(slot_probes, Ordering::Relaxed);
        self.lookups
            .bucket_accesses
            .fetch_add(bucket_accesses, Ordering::Relaxed);
    }

    /// Records one delete call.
    #[inline]
    pub fn record_delete(&self, slot_probes: u64, bucket_accesses: u64) {
        self.deletes.calls.fetch_add(1, Ordering::Relaxed);
        self.deletes
            .slot_probes
            .fetch_add(slot_probes, Ordering::Relaxed);
        self.deletes
            .bucket_accesses
            .fetch_add(bucket_accesses, Ordering::Relaxed);
    }

    /// Adds `n` fingerprint relocations (paper: kick-outs).
    #[inline]
    pub fn add_kicks(&self, n: u64) {
        self.kicks.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one insertion failure (kick limit reached).
    #[inline]
    pub fn add_failed_insert(&self) {
        self.failed_inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` full hash computations (over item bytes or fingerprints).
    #[inline]
    pub fn add_hashes(&self, n: u64) {
        self.hash_computations.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> Stats {
        Stats {
            inserts: self.inserts.snapshot(),
            lookups: self.lookups.snapshot(),
            deletes: self.deletes.snapshot(),
            kicks: self.kicks.load(Ordering::Relaxed),
            failed_inserts: self.failed_inserts.load(Ordering::Relaxed),
            hash_computations: self.hash_computations.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.inserts.reset();
        self.lookups.reset();
        self.deletes.reset();
        self.kicks.store(0, Ordering::Relaxed);
        self.failed_inserts.store(0, Ordering::Relaxed);
        self.hash_computations.store(0, Ordering::Relaxed);
    }
}

impl Clone for Counters {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        let new = Counters::new();
        new.inserts
            .calls
            .store(snap.inserts.calls, Ordering::Relaxed);
        new.inserts
            .slot_probes
            .store(snap.inserts.slot_probes, Ordering::Relaxed);
        new.inserts
            .bucket_accesses
            .store(snap.inserts.bucket_accesses, Ordering::Relaxed);
        new.lookups
            .calls
            .store(snap.lookups.calls, Ordering::Relaxed);
        new.lookups
            .slot_probes
            .store(snap.lookups.slot_probes, Ordering::Relaxed);
        new.lookups
            .bucket_accesses
            .store(snap.lookups.bucket_accesses, Ordering::Relaxed);
        new.deletes
            .calls
            .store(snap.deletes.calls, Ordering::Relaxed);
        new.deletes
            .slot_probes
            .store(snap.deletes.slot_probes, Ordering::Relaxed);
        new.deletes
            .bucket_accesses
            .store(snap.deletes.bucket_accesses, Ordering::Relaxed);
        new.kicks.store(snap.kicks, Ordering::Relaxed);
        new.failed_inserts
            .store(snap.failed_inserts, Ordering::Relaxed);
        new.hash_computations
            .store(snap.hash_computations, Ordering::Relaxed);
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let c = Counters::new();
        c.record_insert(4, 2);
        c.record_insert(8, 4);
        c.record_lookup(16, 4);
        c.record_delete(3, 1);
        c.add_kicks(5);
        c.add_failed_insert();
        c.add_hashes(7);
        let s = c.snapshot();
        assert_eq!(s.inserts.calls, 2);
        assert_eq!(s.inserts.slot_probes, 12);
        assert_eq!(s.inserts.bucket_accesses, 6);
        assert_eq!(s.lookups.calls, 1);
        assert_eq!(s.deletes.slot_probes, 3);
        assert_eq!(s.kicks, 5);
        assert_eq!(s.failed_inserts, 1);
        assert_eq!(s.hash_computations, 7);
    }

    #[test]
    fn reset_zeroes() {
        let c = Counters::new();
        c.record_insert(1, 1);
        c.add_kicks(9);
        c.reset();
        assert_eq!(c.snapshot(), Stats::default());
    }

    #[test]
    fn clone_preserves_snapshot() {
        let c = Counters::new();
        c.record_lookup(2, 2);
        c.add_hashes(3);
        let d = c.clone();
        assert_eq!(c.snapshot(), d.snapshot());
    }

    #[test]
    fn counters_are_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Counters>();
    }
}
