//! Operation counters used by the experiment harness.
//!
//! The paper's Figure 8 reports the *average number of evicted fingerprints*
//! per insertion (`E0`), and Section V compares hash-computation counts
//! between VCF and CF. Every filter in the workspace therefore maintains a
//! small set of cheap `u64` counters that the harness snapshots via
//! [`Stats`].

use core::fmt;
use core::ops::{Add, AddAssign};

/// Counters for one class of operation (inserts, lookups or deletes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct OpCounters {
    /// Number of operations of this class issued.
    pub calls: u64,
    /// Number of slot probes (fingerprint comparisons or empty-slot checks).
    pub slot_probes: u64,
    /// Number of bucket accesses.
    pub bucket_accesses: u64,
}

impl OpCounters {
    /// Creates zeroed counters.
    pub const fn new() -> Self {
        Self {
            calls: 0,
            slot_probes: 0,
            bucket_accesses: 0,
        }
    }

    /// Average slot probes per call; `0.0` when no calls were recorded.
    pub fn probes_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.slot_probes as f64 / self.calls as f64
        }
    }
}

impl Add for OpCounters {
    type Output = OpCounters;

    fn add(self, rhs: OpCounters) -> OpCounters {
        OpCounters {
            calls: self.calls + rhs.calls,
            slot_probes: self.slot_probes + rhs.slot_probes,
            bucket_accesses: self.bucket_accesses + rhs.bucket_accesses,
        }
    }
}

impl AddAssign for OpCounters {
    fn add_assign(&mut self, rhs: OpCounters) {
        *self = *self + rhs;
    }
}

/// Snapshot of a filter's instrumentation counters.
///
/// # Examples
///
/// ```
/// use vcf_traits::Stats;
///
/// let mut stats = Stats::default();
/// stats.inserts.calls = 100;
/// stats.kicks = 27;
/// assert!((stats.kicks_per_insert() - 0.27).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Stats {
    /// Insert-side counters (successful and failed inserts both count).
    pub inserts: OpCounters,
    /// Lookup-side counters.
    pub lookups: OpCounters,
    /// Delete-side counters.
    pub deletes: OpCounters,
    /// Fingerprint relocations ("kick-outs") performed by cuckoo-family
    /// filters. The paper's `E0` metric is `kicks / inserts.calls`.
    pub kicks: u64,
    /// Insertions that failed because the kick limit was reached.
    pub failed_inserts: u64,
    /// Full hash computations over item bytes or fingerprints. VCF's
    /// headline claim is that it needs *fewer* of these per insert than CF
    /// because relocation reuses masked fragments of `hash(fp)`.
    pub hash_computations: u64,
}

impl Stats {
    /// Creates zeroed statistics.
    pub const fn new() -> Self {
        Self {
            inserts: OpCounters::new(),
            lookups: OpCounters::new(),
            deletes: OpCounters::new(),
            kicks: 0,
            failed_inserts: 0,
            hash_computations: 0,
        }
    }

    /// Average number of fingerprint evictions per issued insertion — the
    /// measured counterpart of the paper's `E0` (Fig. 8 / Equ. 15).
    pub fn kicks_per_insert(&self) -> f64 {
        if self.inserts.calls == 0 {
            0.0
        } else {
            self.kicks as f64 / self.inserts.calls as f64
        }
    }

    /// Average hash computations per issued insertion.
    pub fn hashes_per_insert(&self) -> f64 {
        if self.inserts.calls == 0 {
            0.0
        } else {
            self.hash_computations as f64 / self.inserts.calls as f64
        }
    }
}

impl Add for Stats {
    type Output = Stats;

    fn add(self, rhs: Stats) -> Stats {
        Stats {
            inserts: self.inserts + rhs.inserts,
            lookups: self.lookups + rhs.lookups,
            deletes: self.deletes + rhs.deletes,
            kicks: self.kicks + rhs.kicks,
            failed_inserts: self.failed_inserts + rhs.failed_inserts,
            hash_computations: self.hash_computations + rhs.hash_computations,
        }
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, rhs: Stats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inserts={} (failed={}) kicks={} ({:.3}/insert) lookups={} deletes={} hashes={}",
            self.inserts.calls,
            self.failed_inserts,
            self.kicks,
            self.kicks_per_insert(),
            self.lookups.calls,
            self.deletes.calls,
            self.hash_computations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let s = Stats::default();
        assert_eq!(s, Stats::new());
        assert_eq!(s.kicks_per_insert(), 0.0);
        assert_eq!(s.hashes_per_insert(), 0.0);
        assert_eq!(s.inserts.probes_per_call(), 0.0);
    }

    #[test]
    fn kicks_per_insert_divides_by_calls() {
        let mut s = Stats::new();
        s.inserts.calls = 8;
        s.kicks = 4;
        assert!((s.kicks_per_insert() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn add_sums_fieldwise() {
        let mut a = Stats::new();
        a.inserts.calls = 1;
        a.kicks = 2;
        a.lookups.slot_probes = 3;
        let mut b = Stats::new();
        b.inserts.calls = 10;
        b.kicks = 20;
        b.lookups.slot_probes = 30;
        let c = a + b;
        assert_eq!(c.inserts.calls, 11);
        assert_eq!(c.kicks, 22);
        assert_eq!(c.lookups.slot_probes, 33);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = Stats::new();
        a.failed_inserts = 5;
        let mut b = Stats::new();
        b.failed_inserts = 7;
        let sum = a + b;
        a += b;
        assert_eq!(a, sum);
    }

    #[test]
    fn op_counters_probes_per_call() {
        let c = OpCounters {
            calls: 4,
            slot_probes: 10,
            bucket_accesses: 8,
        };
        assert!((c.probes_per_call() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Stats::new().to_string().is_empty());
    }
}
