//! Online capacity management for filters that resize without
//! stop-the-world rebuilds.

use crate::{BuildError, Filter};

/// A [`Filter`] whose capacity changes online.
///
/// Scalable filters keep their data in an ordered chain of *segments*
/// (oldest first); inserts land in the newest ("active") segment and
/// lookups fan across the chain. Growth appends a larger segment;
/// an *incremental migration* drains older segments into the active one
/// a bounded amount of work at a time, so no single operation blocks on
/// a full rebuild. The trait exposes that machinery for tests, benches
/// and maintenance loops.
///
/// # Contract
///
/// * `grow`, `migrate_step` and `shrink_to_fit` never change any lookup
///   answer: no false negatives are introduced and occupancy
///   ([`Filter::len`]) is preserved exactly.
/// * `migrate_step(n)` performs at most `n` bucket-ranges of migration
///   work — the bounded-latency guarantee callers amortize against.
/// * After `migration_backlog()` reaches zero the filter holds a single
///   segment.
pub trait ScalableFilter: Filter {
    /// Appends a new active segment (typically double the current one),
    /// scheduling the older segments for incremental migration.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the implementation's growth limit
    /// is reached or the new segment cannot be allocated.
    fn grow(&mut self) -> Result<(), BuildError>;

    /// Re-packs the chain into the smallest geometry that holds the
    /// current occupancy, returning `true` when the footprint shrank.
    ///
    /// This is an explicit maintenance operation — unlike growth it is
    /// *not* amortized across other operations, so callers invoke it
    /// when a latency spike is acceptable (e.g. per shard, off-peak).
    fn shrink_to_fit(&mut self) -> bool;

    /// Drains up to `buckets` bucket-ranges from the oldest segments
    /// into the active one, returning how many were fully drained.
    /// Stops early when the chain is already flat or the active segment
    /// cannot currently accept the displaced fingerprints (the next
    /// [`grow`](ScalableFilter::grow) unblocks it).
    fn migrate_step(&mut self, buckets: usize) -> usize;

    /// Bucket-ranges still awaiting migration (0 ⇔ a single segment).
    fn migration_backlog(&self) -> usize;

    /// Number of segments currently in the chain.
    fn segments(&self) -> usize;

    /// Stored entries per segment, oldest first.
    fn segment_lens(&self) -> Vec<usize>;

    /// Slot capacity per segment, oldest first.
    fn segment_capacities(&self) -> Vec<usize>;
}
