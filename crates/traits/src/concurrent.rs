//! The shared-reference filter trait for concurrent callers.

use crate::{Filter, InsertError, Stats};
use std::sync::RwLock;

/// A thread-safe set-membership sketch: the [`Filter`] contract with
/// `&self` mutators, so many threads can insert, look up and delete
/// through a plain shared reference (`Arc<F>`).
///
/// Implementations choose their own concurrency story — a single lock
/// (see the blanket impl for [`RwLock`]), per-shard locks (`ShardRouter`
/// in `vcf-core`), or lock-free CAS on atomic bucket words
/// (`ConcurrentVcf`). All of them keep the family-wide guarantee that an
/// item whose insertion *happens-before* a lookup and is not deleted is
/// always reported present; transient in-flight relocations may only ever
/// add false positives, never false negatives, by the time the mutating
/// operation returns.
///
/// # Examples
///
/// ```
/// use std::sync::RwLock;
/// use vcf_traits::ConcurrentFilter;
///
/// fn churn<F: ConcurrentFilter>(filter: &F) {
///     filter.insert(b"key").unwrap();
///     assert!(filter.contains(b"key"));
///     assert!(filter.delete(b"key"));
/// }
/// ```
pub trait ConcurrentFilter: Send + Sync {
    /// Inserts `item` into the filter.
    ///
    /// # Errors
    ///
    /// Returns [`InsertError::Full`] when the structure cannot accommodate
    /// the item, or [`InsertError::CounterOverflow`] for saturated
    /// counting filters.
    fn insert(&self, item: &[u8]) -> Result<(), InsertError>;

    /// Inserts many items at once, returning one result per item in
    /// order. Like [`Filter::insert_batch`], a full filter does not stop
    /// the batch: each item reports its own outcome. Implementations
    /// override this to batch lock acquisitions or reuse the sequential
    /// prefetch pipelines under a single exclusive section.
    fn insert_batch(&self, items: &[&[u8]]) -> Vec<Result<(), InsertError>> {
        items.iter().map(|item| self.insert(item)).collect()
    }

    /// Tests membership of `item`. May return false positives, never
    /// false negatives for items whose insertion happens-before the call.
    fn contains(&self, item: &[u8]) -> bool;

    /// Tests membership of many items at once, returning one answer per
    /// item in order. Implementations override this to batch lock
    /// acquisitions or overlap bucket loads.
    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        items.iter().map(|item| self.contains(item)).collect()
    }

    /// Removes one copy of `item`; returns `true` if a matching entry was
    /// found and removed.
    fn delete(&self, item: &[u8]) -> bool;

    /// Removes one copy of each item, returning one answer per item in
    /// order. Implementations override this to take their exclusive
    /// section once per batch instead of once per item.
    fn delete_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        items.iter().map(|item| self.delete(item)).collect()
    }

    /// Number of entries currently stored (exact at quiescence).
    fn len(&self) -> usize;

    /// Returns `true` when no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entry capacity.
    fn capacity(&self) -> usize;

    /// Current load factor `α = len / capacity`.
    fn load_factor(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.len() as f64 / self.capacity() as f64
        }
    }

    /// Whether this structure supports true deletion.
    fn supports_deletion(&self) -> bool {
        true
    }

    /// Snapshot of the operation counters.
    fn stats(&self) -> Stats;

    /// Resets the operation counters (does not touch stored items).
    fn reset_stats(&self);

    /// Short human-readable name used by benches and reports.
    fn name(&self) -> String;
}

/// Any sequential [`Filter`] behind one `RwLock` is a (coarsely locked)
/// concurrent filter: lookups share the lock, mutations serialize. This is
/// the baseline the fine-grained implementations are measured against,
/// and what `ShardedVcf` wraps per shard.
///
/// Lock poisoning is recovered from rather than propagated: an
/// approximate filter left mid-mutation by a panicking writer can at
/// worst misreport membership, which is within the structure's error
/// contract, and a query path that panics on someone else's panic
/// would take the whole service down with it.
impl<F: Filter + Send + Sync> ConcurrentFilter for RwLock<F> {
    fn insert(&self, item: &[u8]) -> Result<(), InsertError> {
        self.write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(item)
    }

    fn insert_batch(&self, items: &[&[u8]]) -> Vec<Result<(), InsertError>> {
        // One lock acquisition for the whole batch, and the sequential
        // filter's own pipelined (prefetching) batch insert underneath.
        self.write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert_batch(items)
    }

    fn contains(&self, item: &[u8]) -> bool {
        self.read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .contains(item)
    }

    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        // One lock acquisition for the whole batch.
        self.read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .contains_batch(items)
    }

    fn delete(&self, item: &[u8]) -> bool {
        self.write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .delete(item)
    }

    fn delete_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        // One lock acquisition for the whole batch.
        let mut filter = self
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        items.iter().map(|item| filter.delete(item)).collect()
    }

    fn len(&self) -> usize {
        self.read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    fn capacity(&self) -> usize {
        self.read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .capacity()
    }

    fn supports_deletion(&self) -> bool {
        self.read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .supports_deletion()
    }

    fn stats(&self) -> Stats {
        self.read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .stats()
    }

    fn reset_stats(&self) {
        self.write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .reset_stats();
    }

    fn name(&self) -> String {
        self.read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counters;

    /// Minimal in-memory filter for exercising the blanket impl.
    struct ToyFilter {
        items: Vec<Vec<u8>>,
        counters: Counters,
    }

    impl Filter for ToyFilter {
        fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
            self.items.push(item.to_vec());
            self.counters.record_insert(1, 1);
            Ok(())
        }

        fn contains(&self, item: &[u8]) -> bool {
            self.items.iter().any(|i| i == item)
        }

        fn delete(&mut self, item: &[u8]) -> bool {
            match self.items.iter().position(|i| i == item) {
                Some(at) => {
                    self.items.swap_remove(at);
                    true
                }
                None => false,
            }
        }

        fn len(&self) -> usize {
            self.items.len()
        }

        fn capacity(&self) -> usize {
            1024
        }

        fn stats(&self) -> Stats {
            self.counters.snapshot()
        }

        fn reset_stats(&mut self) {
            self.counters.reset();
        }

        fn name(&self) -> String {
            "Toy".to_owned()
        }
    }

    fn toy() -> RwLock<ToyFilter> {
        RwLock::new(ToyFilter {
            items: Vec::new(),
            counters: Counters::new(),
        })
    }

    #[test]
    fn rwlock_blanket_impl_round_trips() {
        let filter = toy();
        ConcurrentFilter::insert(&filter, b"a").unwrap();
        assert!(ConcurrentFilter::contains(&filter, b"a"));
        assert_eq!(
            ConcurrentFilter::contains_batch(&filter, &[b"a".as_slice(), b"b".as_slice()]),
            vec![true, false]
        );
        assert_eq!(ConcurrentFilter::len(&filter), 1);
        assert_eq!(ConcurrentFilter::capacity(&filter), 1024);
        assert!(ConcurrentFilter::load_factor(&filter) > 0.0);
        assert!(ConcurrentFilter::delete(&filter, b"a"));
        assert!(ConcurrentFilter::is_empty(&filter));
        assert_eq!(ConcurrentFilter::name(&filter), "Toy");
        ConcurrentFilter::reset_stats(&filter);
        assert_eq!(ConcurrentFilter::stats(&filter).inserts.calls, 0);
    }

    #[test]
    fn rwlock_batched_mutations_match_serial_semantics() {
        let filter = toy();
        let keys: Vec<&[u8]> = vec![b"x", b"y", b"x"];
        let results = ConcurrentFilter::insert_batch(&filter, &keys);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(ConcurrentFilter::len(&filter), 3);
        // Deleting x twice removes both copies; a fourth delete misses.
        assert_eq!(
            ConcurrentFilter::delete_batch(&filter, &[b"x".as_slice(), b"x", b"y", b"y"]),
            vec![true, true, true, false]
        );
        assert!(ConcurrentFilter::is_empty(&filter));
    }

    #[test]
    fn rwlock_filter_is_shareable_across_threads() {
        use std::sync::Arc;
        let filter = Arc::new(toy());
        let handles: Vec<_> = (0..4u8)
            .map(|t| {
                let filter = Arc::clone(&filter);
                std::thread::spawn(move || {
                    ConcurrentFilter::insert(filter.as_ref(), &[t]).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ConcurrentFilter::len(filter.as_ref()), 4);
    }
}
