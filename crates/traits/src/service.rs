//! The batched-op *service* surface: what a wire server dispatches over.
//!
//! A filter server's data plane never sees single operations — frames
//! carry whole batches of one operation kind, and the per-key outcome is
//! a single bit on the wire (insert: stored?, lookup: present?, delete:
//! removed?). [`FilterService`] is that exact surface: object-safe,
//! `&self`, one entry point per batch, so the server's shard executor
//! can hold `dyn FilterService` shards without caring whether a shard is
//! lock-free, `RwLock`-wrapped, or elastic.
//!
//! Every [`ConcurrentFilter`] is a `FilterService` via the blanket impl,
//! which lowers each batch onto the filter's own batched entry points
//! (`insert_batch` / `contains_batch` / `delete_batch`) so the prefetch
//! pipelines underneath them stay on the hot path.

use crate::ConcurrentFilter;

/// Kind of a data-plane batch operation, mirroring the wire opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchOpKind {
    /// Store every key; per-key bit = 1 when stored, 0 when the filter
    /// was too full.
    Insert,
    /// Membership-test every key; per-key bit = the (approximate) answer.
    Lookup,
    /// Remove one copy of every key; per-key bit = 1 when a matching
    /// entry was found and removed.
    Delete,
}

impl BatchOpKind {
    /// Short lowercase label used by metrics and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BatchOpKind::Insert => "insert",
            BatchOpKind::Lookup => "lookup",
            BatchOpKind::Delete => "delete",
        }
    }
}

/// A batched set-membership service: the [`ConcurrentFilter`] contract
/// flattened to the one call shape a request/response data plane needs.
///
/// # Examples
///
/// ```
/// use std::sync::RwLock;
/// use vcf_traits::{BatchOpKind, FilterService};
///
/// fn burst<S: FilterService + ?Sized>(service: &S) {
///     let keys: Vec<&[u8]> = vec![b"a", b"b"];
///     let stored = service.execute_batch(BatchOpKind::Insert, &keys);
///     assert_eq!(stored, vec![true, true]);
///     let present = service.execute_batch(BatchOpKind::Lookup, &keys);
///     assert_eq!(present, vec![true, true]);
/// }
/// ```
pub trait FilterService: Send + Sync {
    /// Executes one single-kind batch, returning one outcome bit per key
    /// in input order.
    fn execute_batch(&self, op: BatchOpKind, keys: &[&[u8]]) -> Vec<bool>;

    /// Number of entries currently stored (exact at quiescence).
    fn service_len(&self) -> usize;

    /// Total entry capacity.
    fn service_capacity(&self) -> usize;

    /// Display name for logs and stats replies.
    fn service_name(&self) -> String;
}

impl<F: ConcurrentFilter> FilterService for F {
    fn execute_batch(&self, op: BatchOpKind, keys: &[&[u8]]) -> Vec<bool> {
        match op {
            BatchOpKind::Insert => self.insert_batch(keys).iter().map(Result::is_ok).collect(),
            BatchOpKind::Lookup => self.contains_batch(keys),
            BatchOpKind::Delete => self.delete_batch(keys),
        }
    }

    fn service_len(&self) -> usize {
        self.len()
    }

    fn service_capacity(&self) -> usize {
        self.capacity()
    }

    fn service_name(&self) -> String {
        self.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Filter, InsertError, Stats};
    use std::sync::RwLock;

    /// Tiny exact-set filter for exercising the blanket impl.
    #[derive(Default)]
    struct ExactSet {
        items: Vec<Vec<u8>>,
    }

    impl Filter for ExactSet {
        fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
            if self.items.len() >= 4 {
                return Err(InsertError::Full { kicks: 0 });
            }
            self.items.push(item.to_vec());
            Ok(())
        }

        fn contains(&self, item: &[u8]) -> bool {
            self.items.iter().any(|i| i == item)
        }

        fn delete(&mut self, item: &[u8]) -> bool {
            match self.items.iter().position(|i| i == item) {
                Some(at) => {
                    self.items.swap_remove(at);
                    true
                }
                None => false,
            }
        }

        fn len(&self) -> usize {
            self.items.len()
        }

        fn capacity(&self) -> usize {
            4
        }

        fn stats(&self) -> Stats {
            Stats::default()
        }

        fn reset_stats(&mut self) {}

        fn name(&self) -> String {
            "ExactSet".to_owned()
        }
    }

    #[test]
    fn blanket_impl_maps_ops_to_bits() {
        let service = RwLock::new(ExactSet::default());
        let keys: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d", b"e"];
        // Capacity 4: the fifth insert reports full as a 0 bit.
        assert_eq!(
            service.execute_batch(BatchOpKind::Insert, &keys),
            vec![true, true, true, true, false]
        );
        assert_eq!(
            service.execute_batch(BatchOpKind::Lookup, &keys),
            vec![true, true, true, true, false]
        );
        assert_eq!(
            service.execute_batch(BatchOpKind::Delete, &keys),
            vec![true, true, true, true, false]
        );
        assert_eq!(service.service_len(), 0);
        assert_eq!(service.service_capacity(), 4);
        assert_eq!(service.service_name(), "ExactSet");
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(BatchOpKind::Insert.label(), "insert");
        assert_eq!(BatchOpKind::Lookup.label(), "lookup");
        assert_eq!(BatchOpKind::Delete.label(), "delete");
    }

    #[test]
    fn service_is_object_safe() {
        let service = RwLock::new(ExactSet::default());
        let dyn_service: &dyn FilterService = &service;
        assert_eq!(
            dyn_service.execute_batch(BatchOpKind::Lookup, &[b"missing".as_slice()]),
            vec![false]
        );
    }
}
