//! Common traits and error types shared by every approximate-membership
//! (AMQ) filter in this workspace.
//!
//! The [`Filter`] trait gives the benchmark harness, the integration tests
//! and the examples a single uniform surface over the Vertical Cuckoo
//! filter family (`vcf-core`) and all baselines (`vcf-baselines`): standard
//! Cuckoo, D-ary Cuckoo, Bloom, Counting Bloom and d-left Counting Bloom
//! filters.
//!
//! Items are opaque byte strings (`&[u8]`). Every filter in the workspace
//! hashes the raw bytes with one of the from-scratch hash functions in
//! `vcf-hash`, exactly as the paper's evaluation does with the (serialized)
//! HIGGS records.
//!
//! # Examples
//!
//! ```
//! use vcf_traits::{Filter, InsertError};
//!
//! fn fill(filter: &mut dyn Filter, keys: &[Vec<u8>]) -> Result<usize, InsertError> {
//!     let mut stored = 0;
//!     for key in keys {
//!         filter.insert(key)?;
//!         stored += 1;
//!     }
//!     Ok(stored)
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

mod concurrent;
mod counters;
mod ext;
mod frozen;
mod scalable;
mod service;
mod stats;

pub use concurrent::ConcurrentFilter;
pub use counters::Counters;
pub use ext::FilterExt;
pub use frozen::{FrozenBuilder, FrozenSet, LifecycleFilter};
pub use scalable::ScalableFilter;
pub use service::{BatchOpKind, FilterService};
pub use stats::{OpCounters, Stats};

/// Error returned when an item cannot be inserted.
///
/// For cuckoo-family filters this happens when the eviction cascade reaches
/// the configured kick limit (`MAX` in the paper, 500 in its evaluation);
/// the filter is then "considered too full to insert more items"
/// (Algorithm 1). For counting filters it signals counter saturation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum InsertError {
    /// The eviction cascade hit the kick limit; the filter is effectively
    /// full. `kicks` reports how many relocations were attempted for this
    /// insertion before giving up.
    Full {
        /// Number of fingerprint relocations attempted before giving up.
        kicks: u64,
    },
    /// A counter in a counting filter would overflow its field width.
    CounterOverflow,
}

impl fmt::Display for InsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertError::Full { kicks } => {
                write!(
                    f,
                    "filter is too full to insert (gave up after {kicks} relocations)"
                )
            }
            InsertError::CounterOverflow => write!(f, "counter field would overflow"),
        }
    }
}

impl std::error::Error for InsertError {}

/// Error returned by filter constructors when the requested geometry is
/// invalid (e.g. a bucket count that is not a power of two, or a
/// fingerprint width of zero).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The bucket count must be a power of two (cuckoo family) or a power
    /// of `d` (D-ary cuckoo filter).
    InvalidBucketCount {
        /// The rejected bucket count.
        got: usize,
        /// Human-readable requirement, e.g. `"a power of two"`.
        requirement: &'static str,
    },
    /// The fingerprint width in bits is outside the supported range.
    InvalidFingerprintBits {
        /// The rejected width.
        got: u32,
        /// Supported minimum (inclusive).
        min: u32,
        /// Supported maximum (inclusive).
        max: u32,
    },
    /// The number of slots per bucket is outside the supported range.
    InvalidBucketSize {
        /// The rejected slots-per-bucket value.
        got: usize,
    },
    /// A configuration parameter combination is inconsistent.
    InvalidConfig {
        /// Explanation of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidBucketCount { got, requirement } => {
                write!(f, "invalid bucket count {got}: must be {requirement}")
            }
            BuildError::InvalidFingerprintBits { got, min, max } => {
                write!(
                    f,
                    "invalid fingerprint width {got} bits: supported range is {min}..={max}"
                )
            }
            BuildError::InvalidBucketSize { got } => {
                write!(
                    f,
                    "invalid bucket size {got}: must be between 1 and 8 slots"
                )
            }
            BuildError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A dynamic set-membership sketch over opaque byte keys.
///
/// All implementations in this workspace guarantee **no false negatives**:
/// an item that has been inserted (and not deleted) is always reported
/// present. False positives occur at a structure-specific, tunable rate.
///
/// Deletion support varies: plain Bloom filters return `false` from
/// [`supports_deletion`](Filter::supports_deletion) and ignore deletes;
/// every other structure deletes for real.
pub trait Filter {
    /// Inserts `item` into the filter.
    ///
    /// # Errors
    ///
    /// Returns [`InsertError::Full`] when the structure cannot accommodate
    /// the item (cuckoo eviction limit reached), or
    /// [`InsertError::CounterOverflow`] for saturated counting filters.
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError>;

    /// Inserts many items at once, returning one result per item in
    /// order. Equivalent to calling [`insert`](Filter::insert) on each
    /// item — including on failure: an [`InsertError::Full`] for one item
    /// does not stop the batch, exactly as a serial loop that records
    /// per-item results would behave.
    ///
    /// Table-backed implementations override this with a pipelined
    /// two-phase pass: hash a window of keys and prefetch all their
    /// candidate buckets first, then place fingerprints against warm
    /// cache lines. Overrides must preserve the serial semantics bit for
    /// bit (same final table state, same per-item results) so the
    /// differential tests in `tests/insert_batch_differential.rs` hold.
    fn insert_batch(&mut self, items: &[&[u8]]) -> Vec<Result<(), InsertError>> {
        items.iter().map(|item| self.insert(item)).collect()
    }

    /// Bulk-constructs the filter from an item stream, returning one
    /// result per item in order.
    ///
    /// Semantically equivalent to [`insert_batch`](Filter::insert_batch)
    /// on the collected stream — every `Ok` item is stored (no false
    /// negatives) and the occupancy equals the `Ok` count — but
    /// implementations are free to place items in a different physical
    /// order. Table-backed filters override this with a sort-by-bucket
    /// build (hash everything up front, counting-sort by candidate
    /// bucket, sweep the table in order with first-fit placement, then
    /// run the eviction machinery only on the overflow tail), which
    /// fills a near-full table several times faster than pipelined
    /// serial insertion.
    fn build_from_iter(
        &mut self,
        items: &mut dyn Iterator<Item = &[u8]>,
    ) -> Vec<Result<(), InsertError>> {
        let items: Vec<&[u8]> = items.collect();
        self.insert_batch(&items)
    }

    /// Tests membership of `item`. May return false positives, never false
    /// negatives.
    fn contains(&self, item: &[u8]) -> bool;

    /// Tests membership of many items at once, returning one answer per
    /// item in order. Equivalent to calling [`contains`](Filter::contains)
    /// on each item; table-backed implementations override this with a
    /// two-pass probe (hash all candidate buckets first, then probe) so
    /// bucket loads overlap instead of serialising on cache misses.
    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        items.iter().map(|item| self.contains(item)).collect()
    }

    /// Removes one copy of `item`; returns `true` if a matching entry was
    /// found and removed.
    ///
    /// Filters that do not support deletion return `false` without
    /// modifying the structure.
    fn delete(&mut self, item: &[u8]) -> bool;

    /// Number of entries currently stored (for Bloom filters: number of
    /// successful insertions).
    fn len(&self) -> usize;

    /// Returns `true` when no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entry capacity (`m * b` slots for cuckoo-family filters,
    /// the design capacity for Bloom-family filters).
    fn capacity(&self) -> usize;

    /// Current load factor `α = len / capacity`.
    fn load_factor(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.len() as f64 / self.capacity() as f64
        }
    }

    /// Whether this structure supports true deletion.
    fn supports_deletion(&self) -> bool {
        true
    }

    /// Snapshot of the operation counters (probes, kicks, hash calls).
    fn stats(&self) -> Stats;

    /// Resets the operation counters (does not touch stored items).
    fn reset_stats(&mut self);

    /// Short human-readable name used by the benchmark harness, e.g.
    /// `"CF"`, `"IVCF4"`, `"DVCF3"`.
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_error_display_mentions_kicks() {
        let err = InsertError::Full { kicks: 500 };
        let text = err.to_string();
        assert!(
            text.contains("500"),
            "display should include kick count: {text}"
        );
    }

    #[test]
    fn insert_error_counter_overflow_display() {
        let text = InsertError::CounterOverflow.to_string();
        assert!(text.contains("overflow"));
    }

    #[test]
    fn build_error_display_variants() {
        let e = BuildError::InvalidBucketCount {
            got: 7,
            requirement: "a power of two",
        };
        assert!(e.to_string().contains("7"));
        let e = BuildError::InvalidFingerprintBits {
            got: 99,
            min: 2,
            max: 32,
        };
        assert!(e.to_string().contains("99"));
        let e = BuildError::InvalidBucketSize { got: 0 };
        assert!(e.to_string().contains("0"));
        let e = BuildError::InvalidConfig {
            reason: "bm1 must equal !bm2".into(),
        };
        assert!(e.to_string().contains("bm1"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InsertError>();
        assert_send_sync::<BuildError>();
    }

    #[test]
    fn insert_error_is_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(InsertError::Full { kicks: 1 });
        takes_err(BuildError::InvalidBucketSize { got: 9 });
    }
}
