//! The Vacuum filter (Wang, Zhou, Shi, Qian, VLDB 2019) — reference [14]
//! of the VCF paper.
//!
//! Standard CF "can only achieve its claimed advantage in
//! memory-efficiency when the size of the table is restricted to a power
//! of two" (Section II-B). The Vacuum filter fixes this by dividing the
//! table into equal-size power-of-two **chunks** and keeping both
//! candidate buckets of every item inside one chunk: the XOR alternate is
//! computed on the *offset within the chunk*, so the total bucket count
//! only needs to be a multiple of the chunk size.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vcf_hash::HashKind;
use vcf_table::FingerprintTable;
use vcf_traits::{BuildError, Counters, Filter, InsertError, Stats};

/// A Vacuum filter: chunked two-candidate cuckoo hashing over an
/// arbitrary multiple-of-chunk bucket count.
///
/// # Examples
///
/// ```
/// use vcf_baselines::VacuumFilter;
/// use vcf_traits::Filter;
///
/// // 3 · 64 = 192 buckets — NOT a power of two.
/// let mut vf = VacuumFilter::new(192, 64, 4, 14, 500, 7)?;
/// vf.insert(b"object")?;
/// assert!(vf.contains(b"object"));
/// assert!(vf.delete(b"object"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct VacuumFilter {
    table: FingerprintTable,
    chunk_size: usize,
    hash: HashKind,
    max_kicks: u32,
    rng: SmallRng,
    undo: Vec<(usize, usize, u32)>,
    counters: Counters,
}

impl VacuumFilter {
    /// Builds a Vacuum filter of `buckets` buckets grouped into chunks of
    /// `chunk_size` (a power of two dividing `buckets`).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when `chunk_size` is not a power of two,
    /// does not divide `buckets`, or the slot geometry is invalid.
    pub fn new(
        buckets: usize,
        chunk_size: usize,
        slots_per_bucket: usize,
        fingerprint_bits: u32,
        max_kicks: u32,
        seed: u64,
    ) -> Result<Self, BuildError> {
        if chunk_size == 0 || !chunk_size.is_power_of_two() {
            return Err(BuildError::InvalidConfig {
                reason: format!("chunk size must be a power of two, got {chunk_size}"),
            });
        }
        if buckets == 0 || !buckets.is_multiple_of(chunk_size) {
            return Err(BuildError::InvalidBucketCount {
                got: buckets,
                requirement: "a positive multiple of the chunk size",
            });
        }
        let table = FingerprintTable::new(buckets, slots_per_bucket, fingerprint_bits)?;
        Ok(Self {
            table,
            chunk_size,
            hash: HashKind::Fnv1a,
            max_kicks,
            rng: SmallRng::seed_from_u64(seed),
            undo: Vec::new(),
            counters: Counters::new(),
        })
    }

    /// Sizes a filter for `items` items at ~95 % load with 64-bucket
    /// chunks — demonstrating the non-power-of-two capability.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors.
    pub fn for_items(items: usize, fingerprint_bits: u32, seed: u64) -> Result<Self, BuildError> {
        let buckets_needed = (items as f64 / 0.95 / 4.0).ceil() as usize;
        let chunk = 64usize;
        let buckets = buckets_needed.div_ceil(chunk).max(1) * chunk;
        Self::new(buckets, chunk, 4, fingerprint_bits, 500, seed)
    }

    /// Number of chunks in the table.
    pub fn chunks(&self) -> usize {
        self.table.buckets() / self.chunk_size
    }

    fn key_of(&self, item: &[u8]) -> (u32, usize) {
        let h = self.hash.hash64(item);
        let fp_bits = self.table.fingerprint_bits();
        let fp_mask = if fp_bits == 32 {
            u32::MAX
        } else {
            (1u32 << fp_bits) - 1
        };
        let mut fp = ((h >> 32) as u32) & fp_mask;
        if fp == 0 {
            fp = 1;
        }
        (fp, (h % self.table.buckets() as u64) as usize)
    }

    /// The chunk-local XOR alternate: both candidates share a chunk, so
    /// the table size need not be a power of two (the VF trick).
    #[inline]
    fn alternate(&self, bucket: usize, fingerprint: u32) -> usize {
        let chunk_base = bucket - (bucket % self.chunk_size);
        let offset = bucket % self.chunk_size;
        let flip = (self.hash.hash_fingerprint(fingerprint) as usize) & (self.chunk_size - 1);
        chunk_base + (offset ^ flip)
    }
}

impl Filter for VacuumFilter {
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        let (fingerprint, b1) = self.key_of(item);
        self.counters.add_hashes(2);
        let b2 = self.alternate(b1, fingerprint);
        let slots = self.table.slots_per_bucket();

        let mut probes = 0u64;
        for bucket in [b1, b2] {
            probes += slots as u64;
            if self.table.try_insert(bucket, fingerprint).is_some() {
                self.counters.record_insert(probes, 2);
                return Ok(());
            }
        }

        self.undo.clear();
        let mut current_fp = fingerprint;
        let mut current_bucket = if self.rng.gen_bool(0.5) { b1 } else { b2 };
        let mut kicks = 0u64;
        for _ in 0..self.max_kicks {
            let slot = self.rng.gen_range(0..slots);
            let victim = self.table.swap(current_bucket, slot, current_fp);
            self.undo.push((current_bucket, slot, victim));
            current_fp = victim;
            kicks += 1;
            self.counters.add_hashes(1);
            current_bucket = self.alternate(current_bucket, current_fp);
            probes += slots as u64;
            if self.table.try_insert(current_bucket, current_fp).is_some() {
                self.counters.add_kicks(kicks);
                self.counters.record_insert(probes, 2 + kicks);
                return Ok(());
            }
        }

        for &(bucket, slot, previous) in self.undo.iter().rev() {
            self.table.set(bucket, slot, previous);
        }
        self.undo.clear();
        self.counters.add_kicks(kicks);
        self.counters.record_insert(probes, 2 + kicks);
        self.counters.add_failed_insert();
        Err(InsertError::Full { kicks })
    }

    fn contains(&self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let b2 = self.alternate(b1, fingerprint);
        let slots = self.table.slots_per_bucket() as u64;
        let mut probes = slots;
        let mut found = self.table.contains(b1, fingerprint);
        if !found && b2 != b1 {
            probes += slots;
            found = self.table.contains(b2, fingerprint);
        }
        self.counters.record_lookup(probes, 2);
        found
    }

    fn delete(&mut self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let b2 = self.alternate(b1, fingerprint);
        let slots = self.table.slots_per_bucket() as u64;
        let mut probes = slots;
        let mut removed = self.table.remove_one(b1, fingerprint);
        if !removed && b2 != b1 {
            probes += slots;
            removed = self.table.remove_one(b2, fingerprint);
        }
        self.counters.record_delete(probes, 2);
        removed
    }

    fn len(&self) -> usize {
        self.table.occupied()
    }

    fn capacity(&self) -> usize {
        self.table.capacity()
    }

    fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
    }

    fn name(&self) -> String {
        "VF".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("vf-{i}").into_bytes()
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(VacuumFilter::new(100, 64, 4, 14, 500, 1).is_err()); // not multiple
        assert!(VacuumFilter::new(192, 48, 4, 14, 500, 1).is_err()); // chunk not pow2
        assert!(VacuumFilter::new(0, 64, 4, 14, 500, 1).is_err());
        assert!(VacuumFilter::new(192, 64, 4, 14, 500, 1).is_ok());
    }

    #[test]
    fn non_power_of_two_table_roundtrips() {
        // 3 · 256 buckets = 768: impossible for standard CF.
        let mut vf = VacuumFilter::new(768, 256, 4, 14, 500, 2).unwrap();
        assert_eq!(vf.chunks(), 3);
        for i in 0..2500 {
            vf.insert(&key(i)).unwrap();
        }
        for i in 0..2500 {
            assert!(vf.contains(&key(i)), "item {i} lost");
        }
        for i in 0..1000 {
            assert!(vf.delete(&key(i)));
        }
        for i in 1000..2500 {
            assert!(vf.contains(&key(i)));
        }
    }

    #[test]
    fn alternates_stay_within_chunk() {
        let vf = VacuumFilter::new(768, 256, 4, 14, 500, 3).unwrap();
        for fp in 1..2000u32 {
            for bucket in [0usize, 100, 255, 256, 400, 767] {
                let alt = vf.alternate(bucket, fp);
                assert_eq!(
                    bucket / 256,
                    alt / 256,
                    "candidates must share a chunk: {bucket} vs {alt}"
                );
                assert_eq!(vf.alternate(alt, fp), bucket, "involution broken");
            }
        }
    }

    #[test]
    fn fills_high_like_cf() {
        let mut vf = VacuumFilter::for_items(10_000, 14, 4).unwrap();
        let mut stored = 0usize;
        for i in 0..vf.capacity() as u64 {
            if vf.insert(&key(i)).is_ok() {
                stored += 1;
            }
        }
        let alpha = stored as f64 / vf.capacity() as f64;
        assert!(alpha > 0.93, "vacuum filter load factor {alpha}");
    }

    #[test]
    fn failed_inserts_roll_back() {
        let mut vf = VacuumFilter::new(192, 64, 4, 14, 100, 5).unwrap();
        let mut acknowledged = Vec::new();
        for i in 0..(vf.capacity() as u64 + 60) {
            if vf.insert(&key(i)).is_ok() {
                acknowledged.push(i);
            }
        }
        for i in acknowledged {
            assert!(vf.contains(&key(i)), "acknowledged {i} lost");
        }
    }

    #[test]
    fn for_items_uses_tight_non_pow2_sizing() {
        let vf = VacuumFilter::for_items(100_000, 14, 6).unwrap();
        // A power-of-two CF would need 2^15 buckets = 131072 slots;
        // the vacuum filter sizes within ~5 % of demand instead.
        let waste = vf.capacity() as f64 / (100_000.0 / 0.95);
        assert!(waste < 1.05, "vacuum sizing should be tight: {waste}");
        assert!(!vf.table.buckets().is_power_of_two());
    }
}
