//! The Counting Bloom filter (Fan et al., SIGCOMM 1998) — Bloom with
//! 4-bit counters, the classic deletable variant (Table I row 2).

use crate::bloom::BloomConfig;
use vcf_table::PackedTable;
use vcf_traits::{BuildError, Counters, Filter, InsertError, Stats};

/// Counter width in bits; 4 is the standard choice (overflow probability
/// is negligible at design load, and the paper's Table I charges CBF
/// exactly `4×` the space of BF for it).
pub const COUNTER_BITS: u32 = 4;

/// A Counting Bloom filter: each of the `m` positions holds a 4-bit
/// counter instead of a single bit, so deletion decrements instead of
/// clearing.
///
/// Counters that reach 15 become *sticky* (never incremented past, never
/// decremented): this is the standard safeguard against the false
/// negatives that counter overflow would otherwise cause.
///
/// # Examples
///
/// ```
/// use vcf_baselines::{BloomConfig, CountingBloomFilter};
/// use vcf_traits::Filter;
///
/// let mut cbf = CountingBloomFilter::new(BloomConfig::for_items(1000, 0.01))?;
/// cbf.insert(b"session-9")?;
/// assert!(cbf.contains(b"session-9"));
/// assert!(cbf.delete(b"session-9"));
/// assert!(!cbf.contains(b"session-9"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CountingBloomFilter {
    counters_table: PackedTable,
    config: BloomConfig,
    items: usize,
    sticky: u64,
    counters: Counters,
}

impl CountingBloomFilter {
    /// Builds an empty CBF with `config.bits` counters.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the geometry is degenerate.
    pub fn new(config: BloomConfig) -> Result<Self, BuildError> {
        if config.hashes == 0 {
            return Err(BuildError::InvalidConfig {
                reason: "at least one hash function is required".into(),
            });
        }
        let counters_table = PackedTable::new(config.bits.max(1), COUNTER_BITS)?;
        Ok(Self {
            counters_table,
            config,
            items: 0,
            sticky: 0,
            counters: Counters::new(),
        })
    }

    /// Number of counters (the BF's `m`).
    pub fn positions(&self) -> usize {
        self.counters_table.len()
    }

    /// Number of counters stuck at the 15 ceiling so far.
    pub fn sticky_counters(&self) -> u64 {
        self.sticky
    }

    #[inline]
    fn base_hashes(&self, item: &[u8]) -> (u64, u64) {
        let h = self.config.hash.hash64(item);
        (h, vcf_hash::mix64(h) | 1)
    }

    #[inline]
    fn position(&self, h1: u64, h2: u64, i: u32) -> usize {
        (h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.positions() as u64) as usize
    }

    const MAX: u64 = (1 << COUNTER_BITS) - 1;
}

impl Filter for CountingBloomFilter {
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        let (h1, h2) = self.base_hashes(item);
        self.counters.add_hashes(1);
        for i in 0..self.config.hashes {
            let pos = self.position(h1, h2, i);
            let value = self.counters_table.get(pos);
            if value < Self::MAX {
                self.counters_table.set(pos, value + 1);
                if value + 1 == Self::MAX {
                    self.sticky += 1;
                }
            }
        }
        self.counters
            .record_insert(u64::from(self.config.hashes), 0);
        self.items += 1;
        Ok(())
    }

    fn contains(&self, item: &[u8]) -> bool {
        let (h1, h2) = self.base_hashes(item);
        let mut probes = 0u64;
        let mut all_set = true;
        for i in 0..self.config.hashes {
            probes += 1;
            if self.counters_table.get(self.position(h1, h2, i)) == 0 {
                all_set = false;
                break;
            }
        }
        self.counters.record_lookup(probes, 0);
        all_set
    }

    fn delete(&mut self, item: &[u8]) -> bool {
        // Deleting an item that is not (apparently) present would corrupt
        // other items' counters; CBF semantics require a membership check.
        if !self.contains(item) {
            self.counters.record_delete(0, 0);
            return false;
        }
        let (h1, h2) = self.base_hashes(item);
        for i in 0..self.config.hashes {
            let pos = self.position(h1, h2, i);
            let value = self.counters_table.get(pos);
            // Sticky ceiling: a counter at MAX may underestimate its true
            // count, so it must never be decremented.
            if value > 0 && value < Self::MAX {
                self.counters_table.set(pos, value - 1);
            }
        }
        self.counters
            .record_delete(u64::from(self.config.hashes), 0);
        self.items = self.items.saturating_sub(1);
        true
    }

    fn len(&self) -> usize {
        self.items
    }

    fn capacity(&self) -> usize {
        self.config.capacity
    }

    fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
    }

    fn name(&self) -> String {
        "CBF".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("cbf-{i}").into_bytes()
    }

    #[test]
    fn insert_delete_roundtrip() {
        let mut cbf = CountingBloomFilter::new(BloomConfig::for_items(1000, 0.01)).unwrap();
        cbf.insert(b"a").unwrap();
        assert!(cbf.contains(b"a"));
        assert!(cbf.delete(b"a"));
        assert!(!cbf.contains(b"a"));
        assert!(!cbf.delete(b"a"));
    }

    #[test]
    fn no_false_negatives_under_churn() {
        let mut cbf = CountingBloomFilter::new(BloomConfig::for_items(5_000, 0.01)).unwrap();
        for i in 0..5_000 {
            cbf.insert(&key(i)).unwrap();
        }
        for i in 0..2_500 {
            assert!(cbf.delete(&key(i)));
        }
        for i in 2_500..5_000 {
            assert!(
                cbf.contains(&key(i)),
                "item {i} lost after unrelated deletes"
            );
        }
    }

    #[test]
    fn duplicate_copies_tracked() {
        let mut cbf = CountingBloomFilter::new(BloomConfig::for_items(100, 0.01)).unwrap();
        cbf.insert(b"dup").unwrap();
        cbf.insert(b"dup").unwrap();
        assert!(cbf.delete(b"dup"));
        assert!(cbf.contains(b"dup"), "second copy must survive");
    }

    #[test]
    fn sticky_counters_never_underflow() {
        let mut cbf = CountingBloomFilter::new(BloomConfig::new(8, 1)).unwrap();
        // Slam one position past the ceiling.
        for _ in 0..40 {
            cbf.insert(b"hot").unwrap();
        }
        assert!(cbf.sticky_counters() > 0);
        // Deleting 40 times cannot produce a false negative for a
        // different item that shares the sticky counter.
        for _ in 0..40 {
            cbf.delete(b"hot");
        }
        assert!(cbf.contains(b"hot"), "sticky counter must stay sticky");
    }

    #[test]
    fn len_tracks_net_insertions() {
        let mut cbf = CountingBloomFilter::new(BloomConfig::for_items(100, 0.01)).unwrap();
        cbf.insert(b"x").unwrap();
        cbf.insert(b"y").unwrap();
        assert_eq!(cbf.len(), 2);
        cbf.delete(b"x");
        assert_eq!(cbf.len(), 1);
    }

    #[test]
    fn rejects_zero_hashes() {
        let mut c = BloomConfig::new(64, 1);
        c.hashes = 0;
        assert!(CountingBloomFilter::new(c).is_err());
    }
}
