//! The standard Cuckoo filter (Fan et al., CoNEXT 2014) — the paper's
//! primary baseline.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vcf_core::bulk::{self, BulkHost};
use vcf_core::{CuckooConfig, EvictionPolicy};
use vcf_hash::HashKind;
use vcf_table::FingerprintTable;
use vcf_traits::{BuildError, Counters, Filter, InsertError, Stats};

/// The standard two-candidate Cuckoo filter with partial-key cuckoo
/// hashing (Equ. 1):
///
/// ```text
/// B1 = hash(x)
/// B2 = B1 ⊕ hash(η_x)
/// ```
///
/// Insertion evicts a random resident when both candidates are full and
/// relocates it to its single alternate, cascading up to `MAX` kicks —
/// the behaviour whose cost near full load motivates the VCF redesign.
///
/// Shares the storage substrate ([`FingerprintTable`]), hash functions and
/// atomic rollback-on-failure semantics with `vcf_core`, so head-to-head
/// measurements isolate the algorithmic difference.
///
/// # Examples
///
/// ```
/// use vcf_baselines::CuckooFilter;
/// use vcf_core::CuckooConfig;
/// use vcf_traits::Filter;
///
/// let mut cf = CuckooFilter::new(CuckooConfig::new(1 << 8))?;
/// cf.insert(b"packet-12")?;
/// assert!(cf.contains(b"packet-12"));
/// assert!(cf.delete(b"packet-12"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CuckooFilter {
    table: FingerprintTable,
    hash: HashKind,
    max_kicks: u32,
    eviction: EvictionPolicy,
    index_mask: u64,
    rng: SmallRng,
    /// Undo log for the current eviction walk, replayed in reverse when
    /// the kick limit is reached so failed insertions leave no trace.
    undo: Vec<(usize, usize, u32)>,
    counters: Counters,
}

impl CuckooFilter {
    /// Builds a standard CF from `config` (the bitmask-related fields are
    /// ignored; CF has no masks).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry.
    pub fn new(config: CuckooConfig) -> Result<Self, BuildError> {
        config.validate()?;
        let table = FingerprintTable::new(
            config.buckets,
            config.slots_per_bucket,
            config.fingerprint_bits,
        )?;
        Ok(Self {
            table,
            hash: config.hash,
            max_kicks: config.max_kicks,
            eviction: config.eviction,
            index_mask: config.buckets as u64 - 1,
            rng: SmallRng::seed_from_u64(config.seed),
            undo: Vec::new(),
            counters: Counters::new(),
        })
    }

    /// Number of buckets `m`.
    pub fn buckets(&self) -> usize {
        self.table.buckets()
    }

    /// Occupancy of the slot table only — `α` as the paper measures it.
    pub fn table_load_factor(&self) -> f64 {
        self.table.load_factor()
    }

    /// Heap bytes used by the fingerprint table.
    pub fn storage_bytes(&self) -> usize {
        self.table.storage_bytes()
    }

    #[inline]
    fn key_of(&self, item: &[u8]) -> (u32, usize) {
        let h = self.hash.hash64(item);
        let fp_bits = self.table.fingerprint_bits();
        let fp_mask = if fp_bits == 32 {
            u32::MAX
        } else {
            (1u32 << fp_bits) - 1
        };
        let mut fp = ((h >> 32) as u32) & fp_mask;
        if fp == 0 {
            fp = 1;
        }
        (fp, (h & self.index_mask) as usize)
    }

    #[inline]
    fn alternate(&self, bucket: usize, fingerprint: u32) -> usize {
        bucket ^ (self.hash.hash_fingerprint(fingerprint) & self.index_mask) as usize
    }

    /// Places an already-hashed item under the configured policy.
    fn insert_prehashed(
        &mut self,
        fingerprint: u32,
        b1: usize,
        b2: usize,
    ) -> Result<(), InsertError> {
        match self.eviction {
            EvictionPolicy::RandomWalk => self.insert_random_walk(fingerprint, b1, b2),
            EvictionPolicy::Bfs => self.insert_bfs(fingerprint, b1, b2),
        }
    }

    /// Fan et al.'s random-walk relocation, with rollback-on-failure and
    /// bucket accesses counted as they happen.
    fn insert_random_walk(
        &mut self,
        fingerprint: u32,
        b1: usize,
        b2: usize,
    ) -> Result<(), InsertError> {
        let slots = self.table.slots_per_bucket();
        let mut probes = 0u64;
        let mut accesses = 0u64;
        for bucket in [b1, b2] {
            probes += slots as u64;
            accesses += 1;
            if self.table.try_insert(bucket, fingerprint).is_some() {
                self.counters.record_insert(probes, accesses);
                return Ok(());
            }
        }

        self.undo.clear();
        let mut current_fp = fingerprint;
        let mut current_bucket = if self.rng.gen_bool(0.5) { b1 } else { b2 };
        let mut kicks = 0u64;
        for _ in 0..self.max_kicks {
            let slot = self.rng.gen_range(0..slots);
            let victim = self.table.swap(current_bucket, slot, current_fp);
            accesses += 1;
            self.undo.push((current_bucket, slot, victim));
            current_fp = victim;
            kicks += 1;

            // One fresh hash computation per relocation — the cost VCF's
            // vertical hashing amortizes away by needing fewer kicks.
            self.counters.add_hashes(1);
            current_bucket = self.alternate(current_bucket, current_fp);
            probes += slots as u64;
            accesses += 1;
            if self.table.try_insert(current_bucket, current_fp).is_some() {
                self.counters.add_kicks(kicks);
                self.counters.record_insert(probes, accesses);
                return Ok(());
            }
        }

        for &(bucket, slot, previous) in self.undo.iter().rev() {
            self.table.set(bucket, slot, previous);
        }
        self.undo.clear();
        self.counters.add_kicks(kicks);
        self.counters.record_insert(probes, accesses);
        self.counters.add_failed_insert();
        Err(InsertError::Full { kicks })
    }

    /// BFS eviction (Eppstein's simplification): branching factor 1 per
    /// resident — each fingerprint has a single alternate — so the search
    /// tree is the same graph the random walk samples, explored level by
    /// level. Writes happen only once a complete path is known, so no
    /// undo log is needed.
    fn insert_bfs(&mut self, fingerprint: u32, b1: usize, b2: usize) -> Result<(), InsertError> {
        use core::cell::Cell;

        let slots = self.table.slots_per_bucket();
        let probes = Cell::new(0u64);
        let accesses = Cell::new(0u64);
        let max_nodes = if self.max_kicks == 0 {
            0
        } else {
            (self.max_kicks as usize).max(8)
        };

        let table = &self.table;
        let hash = self.hash;
        let index_mask = self.index_mask;
        let counters = &self.counters;
        let path = vcf_core::evict::search(
            [b1, b2].into_iter().map(|b| (b, fingerprint)),
            max_nodes,
            |bucket| {
                probes.set(probes.get() + slots as u64);
                accesses.set(accesses.get() + 1);
                table.first_empty_slot(bucket)
            },
            |bucket, out| {
                accesses.set(accesses.get() + 1);
                for slot in 0..slots {
                    let resident = table.get(bucket, slot);
                    let alt = bucket ^ (hash.hash_fingerprint(resident) & index_mask) as usize;
                    counters.add_hashes(1);
                    out.push((slot, alt, resident));
                }
            },
        );

        let Some(path) = path else {
            self.counters.record_insert(probes.get(), accesses.get());
            self.counters.add_failed_insert();
            return Err(InsertError::Full { kicks: 0 });
        };

        let kicks = path.kicks();
        let mut dest = path.empty_slot;
        for step in path.steps[1..].iter().rev() {
            self.table.set(step.bucket, dest, step.value);
            dest = step.slot_in_parent;
        }
        self.table.set(path.steps[0].bucket, dest, fingerprint);
        self.counters.add_kicks(kicks);
        self.counters
            .record_insert(probes.get(), accesses.get() + kicks + 1);
        Ok(())
    }
}

impl BulkHost for CuckooFilter {
    /// `(fingerprint, B1, B2)` — both candidates precomputed, narrow.
    type Key = (u32, u32, u32);

    fn bulk_buckets(&self) -> usize {
        self.table.buckets()
    }

    fn bulk_key(&self, item: &[u8]) -> Self::Key {
        let (fingerprint, b1) = self.key_of(item);
        (
            fingerprint,
            b1 as u32,
            self.alternate(b1, fingerprint) as u32,
        )
    }

    fn bulk_candidates(&self, _key: &Self::Key) -> usize {
        2
    }

    fn bulk_candidate(&self, key: &Self::Key, e: usize) -> usize {
        if e == 0 {
            key.1 as usize
        } else {
            key.2 as usize
        }
    }

    fn bulk_prefetch(&self, bucket: usize) {
        self.table.prefetch_bucket(bucket);
    }

    fn bulk_try_place(&mut self, key: &Self::Key, e: usize) -> bool {
        let bucket = if e == 0 { key.1 } else { key.2 };
        self.table.try_insert(bucket as usize, key.0).is_some()
    }

    fn bulk_place_run(&mut self, bucket: usize, keys: &[Self::Key]) -> usize {
        let mut fps = [0u64; vcf_table::MAX_BUCKET_SLOTS];
        let take = keys.len().min(fps.len());
        for (fp, key) in fps.iter_mut().zip(&keys[..take]) {
            *fp = u64::from(key.0);
        }
        self.table.fill(bucket, &fps[..take])
    }

    fn bulk_record_keys(&self, n: u64) {
        self.counters.add_hashes(2 * n);
    }

    fn bulk_record_swept(&self, items: u64, bucket_accesses: u64) {
        let slots = self.table.slots_per_bucket() as u64;
        self.counters
            .record_inserts(items, bucket_accesses * slots, bucket_accesses);
    }

    fn bulk_insert(&mut self, key: &Self::Key) -> Result<(), InsertError> {
        self.insert_prehashed(key.0, key.1 as usize, key.2 as usize)
    }
}

impl Filter for CuckooFilter {
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        let (fingerprint, b1) = self.key_of(item);
        self.counters.add_hashes(2); // hash(x) + hash(η)
        let b2 = self.alternate(b1, fingerprint);
        self.insert_prehashed(fingerprint, b1, b2)
    }

    /// Pipelined insertion: derives `(fingerprint, B1, B2)` and
    /// prefetches both buckets for a window of items first, then places
    /// in item order through the same path as serial
    /// [`insert`](Self::insert) (identical PRNG consumption, so batch ≡
    /// serial exactly).
    fn insert_batch(&mut self, items: &[&[u8]]) -> Vec<Result<(), InsertError>> {
        const WINDOW: usize = 16;
        let mut out = Vec::with_capacity(items.len());
        let mut window = Vec::with_capacity(WINDOW);
        for chunk in items.chunks(WINDOW) {
            window.clear();
            for item in chunk {
                let (fingerprint, b1) = self.key_of(item);
                self.counters.add_hashes(2);
                let b2 = self.alternate(b1, fingerprint);
                self.table.prefetch_bucket(b1);
                self.table.prefetch_bucket(b2);
                window.push((fingerprint, b1, b2));
            }
            for &(fingerprint, b1, b2) in &window {
                out.push(self.insert_prehashed(fingerprint, b1, b2));
            }
        }
        out
    }

    /// Sort-by-bucket bulk construction (see [`vcf_core::bulk`]).
    fn build_from_iter(
        &mut self,
        items: &mut dyn Iterator<Item = &[u8]>,
    ) -> Vec<Result<(), InsertError>> {
        bulk::build_from_iter(self, items)
    }

    fn contains(&self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let b2 = self.alternate(b1, fingerprint);
        let slots = self.table.slots_per_bucket() as u64;
        let mut probes = slots;
        let mut found = self.table.contains(b1, fingerprint);
        if !found {
            probes += slots;
            found = self.table.contains(b2, fingerprint);
        }
        self.counters.record_lookup(probes, 2);
        found
    }

    /// Batched lookup: derives `(fingerprint, B1, B2)` for every item up
    /// front, touching both buckets as each key is produced, then probes
    /// the pair per item in a second pass.
    fn contains_batch(&self, items: &[&[u8]]) -> Vec<bool> {
        let mut keys = Vec::with_capacity(items.len());
        for item in items {
            let (fingerprint, b1) = self.key_of(item);
            let b2 = self.alternate(b1, fingerprint);
            self.table.touch_bucket(b1);
            self.table.touch_bucket(b2);
            keys.push((fingerprint, b1, b2));
        }
        let slots = self.table.slots_per_bucket() as u64;
        let mut out = Vec::with_capacity(items.len());
        for &(fingerprint, b1, b2) in &keys {
            // One two-bucket probe with no early exit (SIMD-friendly).
            let found = self.table.contains_any(&[b1, b2], fingerprint);
            self.counters.record_lookup(2 * slots, 2);
            out.push(found);
        }
        out
    }

    fn delete(&mut self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let b2 = self.alternate(b1, fingerprint);
        let slots = self.table.slots_per_bucket() as u64;
        let mut probes = slots;
        let mut removed = self.table.remove_one(b1, fingerprint);
        if !removed && b2 != b1 {
            probes += slots;
            removed = self.table.remove_one(b2, fingerprint);
        }
        self.counters.record_delete(probes, 2);
        removed
    }

    fn len(&self) -> usize {
        self.table.occupied()
    }

    fn capacity(&self) -> usize {
        self.table.capacity()
    }

    fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
    }

    fn name(&self) -> String {
        "CF".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("cf-{i}").into_bytes()
    }

    #[test]
    fn roundtrip() {
        let mut cf = CuckooFilter::new(CuckooConfig::new(1 << 8).with_seed(1)).unwrap();
        cf.insert(b"a").unwrap();
        assert!(cf.contains(b"a"));
        assert!(cf.delete(b"a"));
        assert!(!cf.contains(b"a"));
    }

    #[test]
    fn alternate_is_involution() {
        let cf = CuckooFilter::new(CuckooConfig::new(1 << 10)).unwrap();
        for fp in 1..200u32 {
            let b = (fp as usize * 37) % (1 << 10);
            assert_eq!(cf.alternate(cf.alternate(b, fp), fp), b);
        }
    }

    #[test]
    fn no_false_negatives_at_90_percent() {
        let mut cf = CuckooFilter::new(CuckooConfig::new(1 << 10).with_seed(5)).unwrap();
        let n = (cf.capacity() as f64 * 0.9) as u64;
        for i in 0..n {
            cf.insert(&key(i)).unwrap();
        }
        for i in 0..n {
            assert!(cf.contains(&key(i)), "item {i} lost");
        }
    }

    #[test]
    fn fills_to_roughly_95_percent() {
        let mut cf = CuckooFilter::new(CuckooConfig::new(1 << 10).with_seed(7)).unwrap();
        let mut stored = 0u64;
        for i in 0..cf.capacity() as u64 {
            if cf.insert(&key(i)).is_ok() {
                stored += 1;
            }
        }
        let alpha = stored as f64 / cf.capacity() as f64;
        assert!(alpha > 0.9, "CF load factor {alpha}");
    }

    #[test]
    fn cf_kicks_more_than_vcf_near_full() {
        use vcf_core::VerticalCuckooFilter;

        let config = CuckooConfig::new(1 << 10).with_seed(3);
        let mut cf = CuckooFilter::new(config).unwrap();
        let mut vcf = VerticalCuckooFilter::new(config).unwrap();
        for i in 0..(1u64 << 12) {
            let _ = cf.insert(&key(i));
            let _ = vcf.insert(&key(i));
        }
        let cf_kicks = cf.stats().kicks_per_insert();
        let vcf_kicks = vcf.stats().kicks_per_insert();
        assert!(
            vcf_kicks < cf_kicks,
            "VCF must evict less than CF: vcf={vcf_kicks} cf={cf_kicks}"
        );
    }

    #[test]
    fn no_false_negatives_after_overflow() {
        let mut cf = CuckooFilter::new(CuckooConfig::new(1 << 6).with_seed(2)).unwrap();
        let mut acknowledged = Vec::new();
        for i in 0..(cf.capacity() as u64 + 64) {
            if cf.insert(&key(i)).is_ok() {
                acknowledged.push(i);
            }
        }
        for i in acknowledged {
            assert!(cf.contains(&key(i)), "acknowledged {i} lost");
        }
    }

    #[test]
    fn duplicate_copies_survive_single_delete() {
        let mut cf = CuckooFilter::new(CuckooConfig::new(1 << 8)).unwrap();
        cf.insert(b"dup").unwrap();
        cf.insert(b"dup").unwrap();
        assert!(cf.delete(b"dup"));
        assert!(cf.contains(b"dup"));
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut cf = CuckooFilter::new(CuckooConfig::new(1 << 8).with_seed(42)).unwrap();
            let mut stored = 0u32;
            for i in 0..1100 {
                if cf.insert(&key(i)).is_ok() {
                    stored += 1;
                }
            }
            (stored, cf.stats().kicks)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn name_is_cf() {
        let cf = CuckooFilter::new(CuckooConfig::new(8)).unwrap();
        assert_eq!(cf.name(), "CF");
    }

    #[test]
    fn insert_batch_matches_serial_exactly() {
        let config = CuckooConfig::new(1 << 8).with_seed(9);
        let mut serial = CuckooFilter::new(config).unwrap();
        let mut batched = CuckooFilter::new(config).unwrap();

        let keys: Vec<Vec<u8>> = (0..1000).map(key).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();

        let serial_results: Vec<_> = refs.iter().map(|k| serial.insert(k)).collect();
        let batch_results = batched.insert_batch(&refs);

        assert_eq!(serial_results, batch_results);
        assert_eq!(serial.len(), batched.len());
        assert_eq!(serial.stats().kicks, batched.stats().kicks);
        for bucket in 0..serial.table.buckets() {
            for slot in 0..serial.table.slots_per_bucket() {
                assert_eq!(
                    serial.table.get(bucket, slot),
                    batched.table.get(bucket, slot),
                    "tables diverge at ({bucket}, {slot})"
                );
            }
        }
    }

    #[test]
    fn bfs_policy_preserves_membership_at_high_load() {
        let mut cf = CuckooFilter::new(
            CuckooConfig::new(1 << 8)
                .with_seed(3)
                .with_eviction_policy(EvictionPolicy::Bfs),
        )
        .unwrap();
        let mut acknowledged = Vec::new();
        for i in 0..1100u64 {
            if cf.insert(&key(i)).is_ok() {
                acknowledged.push(i);
            }
        }
        assert!(
            cf.load_factor() > 0.90,
            "BFS should fill CF well past 90%, got {}",
            cf.load_factor()
        );
        for &i in &acknowledged {
            assert!(cf.contains(&key(i)), "item {i} lost under BFS eviction");
        }
    }

    #[test]
    fn bfs_failed_insert_writes_nothing() {
        let mut cf = CuckooFilter::new(
            CuckooConfig::new(4)
                .with_seed(5)
                .with_eviction_policy(EvictionPolicy::Bfs),
        )
        .unwrap();
        let mut i = 0u64;
        while cf.insert(&key(i)).is_ok() {
            i += 1;
            assert!(i < 100, "a 4-bucket table must fill up");
        }
        let before: Vec<u32> = (0..cf.table.buckets())
            .flat_map(|b| (0..cf.table.slots_per_bucket()).map(move |s| (b, s)))
            .map(|(b, s)| cf.table.get(b, s))
            .collect();
        // BFS is deterministic: the key that just failed fails again.
        assert!(cf.insert(&key(i)).is_err());
        let after: Vec<u32> = (0..cf.table.buckets())
            .flat_map(|b| (0..cf.table.slots_per_bucket()).map(move |s| (b, s)))
            .map(|(b, s)| cf.table.get(b, s))
            .collect();
        assert_eq!(before, after, "failed BFS insert must not mutate the table");
    }
}
