//! The D-ary Cuckoo filter (Xie et al., ICPADS 2017) — the paper's DCF
//! baseline.

use crate::base_d::{add_mod_mixed, radices_for};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vcf_core::CuckooConfig;
use vcf_hash::HashKind;
use vcf_table::FingerprintTable;
use vcf_traits::{BuildError, Counters, Filter, InsertError, Stats};

/// The D-ary Cuckoo filter: `d` candidate buckets linked by base-`d`
/// digit-wise modular addition (Equ. 2).
///
/// Candidate `j` of an item with primary bucket `B1` and fingerprint-hash
/// offset `H` is `B1 ⊕_d j·H` (digit-wise, mod `d`), and applying the
/// offset `d` times cycles back — so, like VCF, a stored fingerprint can be
/// relocated without the original key. Unlike VCF, **every** candidate
/// derivation pays two base conversions (binary → base-d → binary), which
/// is exactly the insertion/lookup overhead the paper measures in
/// Table III and Figs. 6–7.
///
/// The bucket count must decompose into base-`d` digits with at most one
/// leading digit of a radix dividing `d` (for `d = 4`: any power of two).
///
/// # Examples
///
/// ```
/// use vcf_baselines::DaryCuckooFilter;
/// use vcf_core::CuckooConfig;
/// use vcf_traits::Filter;
///
/// // 4^5 buckets, d = 4 (the paper fixes d = 4 for DCF).
/// let mut dcf = DaryCuckooFilter::new(CuckooConfig::new(1024), 4)?;
/// dcf.insert(b"flow:10.0.0.1")?;
/// assert!(dcf.contains(b"flow:10.0.0.1"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DaryCuckooFilter {
    table: FingerprintTable,
    hash: HashKind,
    d: usize,
    radices: Vec<usize>,
    max_kicks: u32,
    rng: SmallRng,
    /// Undo log for the current eviction walk, replayed in reverse when
    /// the kick limit is reached so failed insertions leave no trace.
    undo: Vec<(usize, usize, u32)>,
    counters: Counters,
}

impl DaryCuckooFilter {
    /// Builds a DCF with `d` candidate buckets.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when `d < 2`, geometry is invalid, or the
    /// bucket count does not decompose into `d`-compatible digit radices
    /// (see [`radices_for`]).
    pub fn new(config: CuckooConfig, d: usize) -> Result<Self, BuildError> {
        if d < 2 {
            return Err(BuildError::InvalidConfig {
                reason: format!("DCF needs d >= 2 candidate buckets, got {d}"),
            });
        }
        if config.slots_per_bucket == 0 || config.slots_per_bucket > vcf_table::MAX_BUCKET_SLOTS {
            return Err(BuildError::InvalidBucketSize {
                got: config.slots_per_bucket,
            });
        }
        let radices = radices_for(config.buckets, d).ok_or(BuildError::InvalidBucketCount {
            got: config.buckets,
            requirement: "a product of radices dividing d (any power of two for d = 4)",
        })?;
        let table = FingerprintTable::new(
            config.buckets,
            config.slots_per_bucket,
            config.fingerprint_bits,
        )?;
        Ok(Self {
            table,
            hash: config.hash,
            d,
            radices,
            max_kicks: config.max_kicks,
            rng: SmallRng::seed_from_u64(config.seed),
            undo: Vec::new(),
            counters: Counters::new(),
        })
    }

    /// The number of candidate buckets `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Occupancy of the slot table only — `α` as the paper measures it.
    pub fn table_load_factor(&self) -> f64 {
        self.table.load_factor()
    }

    #[inline]
    fn key_of(&self, item: &[u8]) -> (u32, usize) {
        let h = self.hash.hash64(item);
        let fp_bits = self.table.fingerprint_bits();
        let fp_mask = if fp_bits == 32 {
            u32::MAX
        } else {
            (1u32 << fp_bits) - 1
        };
        let mut fp = ((h >> 32) as u32) & fp_mask;
        if fp == 0 {
            fp = 1;
        }
        (fp, (h as usize) % self.table.buckets())
    }

    /// The base-`d` offset `H` derived from a fingerprint.
    #[inline]
    fn offset_of(&self, fingerprint: u32) -> usize {
        (self.hash.hash_fingerprint(fingerprint) as usize) % self.table.buckets()
    }

    /// All `d` candidate buckets, walking the ⊕_d cycle from `b1`.
    fn candidates(&self, b1: usize, offset: usize) -> Vec<usize> {
        let mut buckets = Vec::with_capacity(self.d);
        let mut current = b1;
        for _ in 0..self.d {
            buckets.push(current);
            current = add_mod_mixed(current, offset, &self.radices);
        }
        buckets
    }
}

impl Filter for DaryCuckooFilter {
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        let (fingerprint, b1) = self.key_of(item);
        self.counters.add_hashes(2);
        let offset = self.offset_of(fingerprint);
        let cands = self.candidates(b1, offset);
        let slots = self.table.slots_per_bucket();

        let mut probes = 0u64;
        for &bucket in &cands {
            probes += slots as u64;
            if self.table.try_insert(bucket, fingerprint).is_some() {
                self.counters.record_insert(probes, self.d as u64);
                return Ok(());
            }
        }

        self.undo.clear();
        let mut current_fp = fingerprint;
        let mut current_bucket = cands[self.rng.gen_range(0..self.d)];
        let mut kicks = 0u64;
        let mut bucket_accesses = self.d as u64;
        for _ in 0..self.max_kicks {
            let slot = self.rng.gen_range(0..slots);
            let victim = self.table.swap(current_bucket, slot, current_fp);
            self.undo.push((current_bucket, slot, victim));
            current_fp = victim;
            kicks += 1;

            self.counters.add_hashes(1);
            let victim_offset = self.offset_of(current_fp);
            // Walk the victim's cycle: d − 1 alternates.
            let mut next = current_bucket;
            let mut placed = false;
            let mut walk = Vec::with_capacity(self.d - 1);
            for _ in 0..self.d - 1 {
                next = add_mod_mixed(next, victim_offset, &self.radices);
                walk.push(next);
                probes += slots as u64;
                bucket_accesses += 1;
                if self.table.try_insert(next, current_fp).is_some() {
                    placed = true;
                    break;
                }
            }
            if placed {
                self.counters.add_kicks(kicks);
                self.counters.record_insert(probes, bucket_accesses);
                return Ok(());
            }
            current_bucket = walk[self.rng.gen_range(0..walk.len())];
        }

        for &(bucket, slot, previous) in self.undo.iter().rev() {
            self.table.set(bucket, slot, previous);
        }
        self.undo.clear();
        self.counters.add_kicks(kicks);
        self.counters.record_insert(probes, bucket_accesses);
        self.counters.add_failed_insert();
        Err(InsertError::Full { kicks })
    }

    fn contains(&self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let offset = self.offset_of(fingerprint);
        let cands = self.candidates(b1, offset);
        let mut probes = 0u64;
        let mut found = false;
        for &bucket in &cands {
            probes += self.table.slots_per_bucket() as u64;
            if self.table.contains(bucket, fingerprint) {
                found = true;
                break;
            }
        }
        self.counters.record_lookup(probes, self.d as u64);
        found
    }

    // `contains_batch` deliberately keeps the trait's one-at-a-time
    // default: a DCF probe is dominated by the serial base-`d` digit
    // arithmetic of the candidate walk, which already covers the memory
    // latency an early-touch pass would hide — measured on a
    // DRAM-resident table, touching candidates ahead only added
    // bandwidth and ran ~40 % slower than the plain loop.

    fn delete(&mut self, item: &[u8]) -> bool {
        let (fingerprint, b1) = self.key_of(item);
        let offset = self.offset_of(fingerprint);
        let cands = self.candidates(b1, offset);
        let mut probes = 0u64;
        let mut removed = false;
        let mut tried: Vec<usize> = Vec::with_capacity(self.d);
        for &bucket in &cands {
            if tried.contains(&bucket) {
                continue;
            }
            tried.push(bucket);
            probes += self.table.slots_per_bucket() as u64;
            if self.table.remove_one(bucket, fingerprint) {
                removed = true;
                break;
            }
        }
        self.counters.record_delete(probes, tried.len() as u64);
        removed
    }

    fn len(&self) -> usize {
        self.table.occupied()
    }

    fn capacity(&self) -> usize {
        self.table.capacity()
    }

    fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
    }

    fn name(&self) -> String {
        "DCF".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CuckooConfig {
        CuckooConfig::new(1 << 10).with_seed(5) // 4^5 buckets
    }

    fn key(i: u64) -> Vec<u8> {
        format!("dcf-{i}").into_bytes()
    }

    #[test]
    fn accepts_all_pow2_sizes_for_d4() {
        assert!(DaryCuckooFilter::new(CuckooConfig::new(1 << 10), 4).is_ok());
        // 2^11 = 2 · 4^5: a mixed-radix table.
        assert!(DaryCuckooFilter::new(CuckooConfig::new(1 << 11), 4).is_ok());
        assert!(DaryCuckooFilter::new(CuckooConfig::new(1 << 10), 1).is_err());
        assert!(DaryCuckooFilter::new(CuckooConfig::new(243), 3).is_ok());
        // 243 = 3^5 is not expressible for d = 4 — but power-of-two
        // validation in CuckooConfig rejects it first.
        assert!(DaryCuckooFilter::new(CuckooConfig::new(243), 4).is_err());
    }

    #[test]
    fn mixed_radix_table_roundtrips() {
        // Odd exponent: 2^9 buckets = 2 · 4^4.
        let mut dcf = DaryCuckooFilter::new(CuckooConfig::new(1 << 9).with_seed(9), 4).unwrap();
        for i in 0..1500 {
            dcf.insert(&key(i)).unwrap();
        }
        for i in 0..1500 {
            assert!(dcf.contains(&key(i)), "item {i} lost in mixed-radix table");
        }
        for i in 0..1500 {
            assert!(dcf.delete(&key(i)));
        }
        assert_eq!(dcf.len(), 0);
    }

    #[test]
    fn candidate_cycle_is_closed() {
        let dcf = DaryCuckooFilter::new(config(), 4).unwrap();
        for fp in [1u32, 99, 4000] {
            let offset = dcf.offset_of(fp);
            for start in [0usize, 17, 512] {
                let cands = dcf.candidates(start, offset);
                assert_eq!(cands.len(), 4);
                // Walking once more returns to the start.
                let back = add_mod_mixed(cands[3], offset, &dcf.radices);
                assert_eq!(back, start);
                // The cycle is the same set from any member.
                for &c in &cands {
                    let mut other = dcf.candidates(c, offset);
                    other.sort_unstable();
                    let mut expect = cands.clone();
                    expect.sort_unstable();
                    assert_eq!(other, expect);
                }
            }
        }
    }

    #[test]
    fn roundtrip_and_no_false_negatives() {
        let mut dcf = DaryCuckooFilter::new(config(), 4).unwrap();
        for i in 0..3000 {
            dcf.insert(&key(i)).unwrap();
        }
        for i in 0..3000 {
            assert!(dcf.contains(&key(i)), "item {i} lost");
        }
        for i in 0..1000 {
            assert!(dcf.delete(&key(i)));
        }
        for i in 1000..3000 {
            assert!(dcf.contains(&key(i)), "item {i} vanished after deletes");
        }
    }

    #[test]
    fn fills_very_high_like_paper() {
        // Table III: DCF reaches 99.94 % load.
        let mut dcf = DaryCuckooFilter::new(config(), 4).unwrap();
        let mut stored = 0u64;
        for i in 0..dcf.capacity() as u64 {
            if dcf.insert(&key(i)).is_ok() {
                stored += 1;
            }
        }
        let alpha = stored as f64 / dcf.capacity() as f64;
        assert!(alpha > 0.97, "DCF load factor {alpha}");
    }

    #[test]
    fn no_false_negatives_after_overflow() {
        let mut dcf = DaryCuckooFilter::new(CuckooConfig::new(64).with_seed(1), 4).unwrap();
        let mut acknowledged = Vec::new();
        for i in 0..(dcf.capacity() as u64 + 40) {
            if dcf.insert(&key(i)).is_ok() {
                acknowledged.push(i);
            }
        }
        for i in acknowledged {
            assert!(dcf.contains(&key(i)), "acknowledged {i} lost");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut dcf = DaryCuckooFilter::new(config(), 4).unwrap();
            let mut stored = 0u32;
            for i in 0..4500 {
                if dcf.insert(&key(i)).is_ok() {
                    stored += 1;
                }
            }
            (stored, dcf.stats().kicks)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn d_accessor_and_name() {
        let dcf = DaryCuckooFilter::new(config(), 4).unwrap();
        assert_eq!(dcf.d(), 4);
        assert_eq!(dcf.name(), "DCF");
    }
}
