//! Base-`d` digit-wise modular arithmetic — the indexing substrate of the
//! D-ary Cuckoo filter.
//!
//! DCF generalizes partial-key cuckoo hashing's XOR to a base-`d`
//! "digit-wise XOR" (Equ. 2): both indices are written in base `d` and
//! added digit by digit modulo `d`. Applying the same offset `d` times
//! cycles back to the start (`X = X ⊕ Y ⊕ Y ⊕ … ⊕ Y`, d times), which is
//! what lets the `d` candidate buckets index each other using only the
//! stored fingerprint — at the cost of explicit base conversions on every
//! operation, the overhead the paper's Table III and Fig. 6/7 measure.
//!
//! The functions here deliberately perform the digit decomposition the way
//! a faithful DCF implementation must (div/mod loops), rather than
//! special-casing power-of-two `d` into bit tricks: DCF's measured
//! slowness relative to VCF *is* this conversion cost.

/// Digit-wise addition modulo `d`: the DCF "XOR" of Equ. 2.
///
/// Both operands are interpreted as `digits`-digit base-`d` numbers; the
/// result is guaranteed to stay below `d^digits`.
///
/// # Panics
///
/// Panics if `d < 2` or an operand does not fit in `digits` base-`d`
/// digits (debug builds).
///
/// # Examples
///
/// ```
/// use vcf_baselines::base_d::add_mod;
///
/// // 11_4 ⊕ 13_4 = (1+1 mod 4, 1+3 mod 4) = 20_4 = 8 in decimal:
/// // 5 = 11_4, 7 = 13_4.
/// assert_eq!(add_mod(5, 7, 4, 2), 8);
/// ```
pub fn add_mod(x: usize, y: usize, d: usize, digits: u32) -> usize {
    assert!(d >= 2, "base must be at least 2");
    debug_assert!(x < d.pow(digits), "x out of range");
    debug_assert!(y < d.pow(digits), "y out of range");
    let mut x = x;
    let mut y = y;
    let mut result = 0usize;
    let mut place = 1usize;
    for _ in 0..digits {
        let digit = (x % d + y % d) % d;
        result += digit * place;
        place *= d;
        x /= d;
        y /= d;
    }
    result
}

/// Digit-wise subtraction modulo `d` (the inverse of [`add_mod`] in its
/// second operand): `sub_mod(add_mod(x, y), y) == x`.
pub fn sub_mod(x: usize, y: usize, d: usize, digits: u32) -> usize {
    assert!(d >= 2, "base must be at least 2");
    let mut x = x;
    let mut y = y;
    let mut result = 0usize;
    let mut place = 1usize;
    for _ in 0..digits {
        let digit = (x % d + d - y % d) % d;
        result += digit * place;
        place *= d;
        x /= d;
        y /= d;
    }
    result
}

/// Digit-wise scalar multiple: adds `y` to zero `times` times — used to
/// jump straight to candidate `j` (`B_{j+1} = B_1 ⊕ j·H`).
pub fn mul_mod(y: usize, times: usize, d: usize, digits: u32) -> usize {
    assert!(d >= 2, "base must be at least 2");
    let mut y = y;
    let mut result = 0usize;
    let mut place = 1usize;
    for _ in 0..digits {
        let digit = (y % d * times) % d;
        result += digit * place;
        place *= d;
        y /= d;
    }
    result
}

/// Mixed-radix digit-wise addition: like [`add_mod`] but with a
/// little-endian list of per-digit radices. The ⊕_d cycle property
/// (`X ⊕ Y` applied `d` times returns to `X`) holds as long as every
/// radix divides `d` — see [`radices_for`].
pub fn add_mod_mixed(x: usize, y: usize, radices: &[usize]) -> usize {
    let mut x = x;
    let mut y = y;
    let mut result = 0usize;
    let mut place = 1usize;
    for &radix in radices {
        debug_assert!(radix >= 2);
        let digit = (x % radix + y % radix) % radix;
        result += digit * place;
        place *= radix;
        x /= radix;
        y /= radix;
    }
    result
}

/// Decomposes a table size `m` into digit radices compatible with `d`-ary
/// cyclic offsets: as many base-`d` digits as fit, plus at most one
/// leading digit whose radix divides `d`. Returns `None` when `m` cannot
/// be expressed that way (e.g. `m = 3 · 4^t` for `d = 4`).
///
/// This is what lets the D-ary filter accept *any* power-of-two bucket
/// count for `d = 4` (`2^odd = 2 · 4^t`), not only exact powers of 4.
///
/// # Examples
///
/// ```
/// use vcf_baselines::base_d::radices_for;
///
/// assert_eq!(radices_for(1024, 4), Some(vec![4, 4, 4, 4, 4]));
/// assert_eq!(radices_for(2048, 4), Some(vec![4, 4, 4, 4, 4, 2]));
/// assert_eq!(radices_for(96, 4), None);
/// ```
pub fn radices_for(m: usize, d: usize) -> Option<Vec<usize>> {
    if d < 2 || m == 0 {
        return None;
    }
    let mut remaining = m;
    let mut radices = Vec::new();
    while remaining.is_multiple_of(d) {
        radices.push(d);
        remaining /= d;
    }
    match remaining {
        1 => {}
        r if r > 1 && d.is_multiple_of(r) => radices.push(r),
        _ => return None,
    }
    if radices.is_empty() {
        return None; // m == 1
    }
    Some(radices)
}

/// Number of base-`d` digits needed so that `d^digits == m`; `None` when
/// `m` is not an exact power of `d`.
pub fn exact_digits(m: usize, d: usize) -> Option<u32> {
    if d < 2 || m == 0 {
        return None;
    }
    let mut value = m;
    let mut digits = 0u32;
    while value > 1 {
        if !value.is_multiple_of(d) {
            return None;
        }
        value /= d;
        digits += 1;
    }
    Some(digits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_closes_after_d_applications() {
        // Equ. 2: X = X ⊕ Y applied d times returns to X.
        for d in 2..=6usize {
            let digits = 3u32;
            let m = d.pow(digits);
            for x in [0usize, 1, 7, m - 1] {
                for y in [1usize, d - 1, m / 2, m - 1] {
                    let mut cur = x;
                    for _ in 0..d {
                        cur = add_mod(cur, y, d, digits);
                    }
                    assert_eq!(cur, x, "cycle broken: d={d} x={x} y={y}");
                }
            }
        }
    }

    #[test]
    fn add_matches_known_base4_example() {
        // 5 = 11_4, 7 = 13_4 → digit-wise (1+1, 1+3) mod 4 = (2, 0) = 20_4 = 8.
        assert_eq!(add_mod(5, 7, 4, 2), 8);
        // XOR equivalence in base 2: digit-wise add mod 2 IS xor.
        for x in 0..16usize {
            for y in 0..16usize {
                assert_eq!(add_mod(x, y, 2, 4), x ^ y);
            }
        }
    }

    #[test]
    fn sub_inverts_add() {
        let d = 4;
        let digits = 4;
        for x in (0..256).step_by(7) {
            for y in (0..256).step_by(11) {
                assert_eq!(sub_mod(add_mod(x, y, d, digits), y, d, digits), x);
            }
        }
    }

    #[test]
    fn mul_is_repeated_add() {
        let d = 4;
        let digits = 3;
        for y in (0..64).step_by(5) {
            let mut acc = 0usize;
            for times in 0..8 {
                assert_eq!(mul_mod(y, times, d, digits), acc, "y={y} times={times}");
                acc = add_mod(acc, y, d, digits);
            }
        }
    }

    #[test]
    fn results_stay_in_range() {
        let d = 4usize;
        let digits = 5;
        let m = d.pow(digits);
        for x in (0..m).step_by(97) {
            for y in (0..m).step_by(131) {
                assert!(add_mod(x, y, d, digits) < m);
                assert!(sub_mod(x, y, d, digits) < m);
            }
        }
    }

    #[test]
    fn exact_digits_detects_powers() {
        assert_eq!(exact_digits(1, 4), Some(0));
        assert_eq!(exact_digits(4, 4), Some(1));
        assert_eq!(exact_digits(256, 4), Some(4));
        assert_eq!(exact_digits(1 << 18, 4), Some(9));
        assert_eq!(exact_digits(8, 4), None);
        assert_eq!(exact_digits(0, 4), None);
        assert_eq!(exact_digits(9, 3), Some(2));
    }

    #[test]
    #[should_panic(expected = "base must be at least 2")]
    fn base_one_panics() {
        add_mod(0, 0, 1, 3);
    }

    #[test]
    fn radices_decomposition() {
        assert_eq!(radices_for(4, 4), Some(vec![4]));
        assert_eq!(radices_for(8, 4), Some(vec![4, 2]));
        assert_eq!(radices_for(1 << 9, 4), Some(vec![4, 4, 4, 4, 2]));
        assert_eq!(radices_for(27, 3), Some(vec![3, 3, 3]));
        assert_eq!(radices_for(12, 4), None); // 3 does not divide 4
        assert_eq!(radices_for(1, 4), None);
        assert_eq!(radices_for(0, 4), None);
    }

    #[test]
    fn mixed_matches_pure_when_exact_power() {
        let radices = radices_for(256, 4).unwrap();
        for x in (0..256).step_by(13) {
            for y in (0..256).step_by(17) {
                assert_eq!(add_mod_mixed(x, y, &radices), add_mod(x, y, 4, 4));
            }
        }
    }

    #[test]
    fn mixed_cycle_closes_for_all_pow2_sizes() {
        // Every power-of-two table size must close after d = 4 steps.
        for bits in 2..=12u32 {
            let m = 1usize << bits;
            let radices = radices_for(m, 4).expect("pow2 decomposes");
            assert_eq!(radices.iter().product::<usize>(), m);
            for x in [0usize, 1, m / 3, m - 1] {
                for y in [1usize, m / 2, m - 1] {
                    let mut cur = x;
                    for _ in 0..4 {
                        cur = add_mod_mixed(cur, y, &radices);
                    }
                    assert_eq!(cur, x, "cycle broken: m={m} x={x} y={y}");
                }
            }
        }
    }

    #[test]
    fn mixed_results_stay_in_range() {
        let radices = radices_for(1 << 11, 4).unwrap();
        for x in (0..1 << 11).step_by(97) {
            for y in (0..1 << 11).step_by(131) {
                assert!(add_mod_mixed(x, y, &radices) < 1 << 11);
            }
        }
    }
}
