//! Baseline approximate-membership structures the paper evaluates against.
//!
//! Everything here is implemented from scratch on the same substrates as
//! the VCF family (`vcf-table` storage, `vcf-hash` hash functions), so the
//! comparisons in the benchmark harness measure *algorithms*, not
//! incidental implementation differences:
//!
//! * [`CuckooFilter`] — the standard two-candidate cuckoo filter of Fan et
//!   al. (paper's primary baseline, Equ. 1).
//! * [`DaryCuckooFilter`] — the D-ary cuckoo filter of Xie et al. with
//!   base-`d` digit-wise modular offsets (the paper's DCF baseline, d = 4,
//!   Equ. 2).
//! * [`BloomFilter`] — the classic Bloom filter (Table I row 1).
//! * [`CountingBloomFilter`] — 4-bit-counter CBF (Table I row 2).
//! * [`DlCountingBloomFilter`] — the d-left counting Bloom filter of
//!   Bonomi et al. (related work, Section II-A).
//! * [`QuotientFilter`] — the quotient filter of Bender et al. (related
//!   work, Section I).
//! * [`AdaptiveCuckooFilter`] — Mitzenmacher et al.'s ACF (related work
//!   [10]): detected false positives are adapted away at run time.
//! * [`VacuumFilter`] — Wang et al.'s chunked filter (related work [14]):
//!   two-candidate cuckoo hashing over non-power-of-two tables.
//!
//! # Examples
//!
//! ```
//! use vcf_baselines::CuckooFilter;
//! use vcf_core::CuckooConfig;
//! use vcf_traits::Filter;
//!
//! let mut cf = CuckooFilter::new(CuckooConfig::new(1 << 10))?;
//! cf.insert(b"hello")?;
//! assert!(cf.contains(b"hello"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
pub mod base_d;
mod bloom;
mod counting_bloom;
mod cuckoo;
mod dary;
mod dlcbf;
mod quotient;
mod vacuum;

pub use adaptive::AdaptiveCuckooFilter;
pub use bloom::{BloomConfig, BloomFilter};
pub use counting_bloom::CountingBloomFilter;
pub use cuckoo::CuckooFilter;
pub use dary::DaryCuckooFilter;
pub use dlcbf::{DlCbfConfig, DlCountingBloomFilter};
pub use quotient::QuotientFilter;
pub use vacuum::VacuumFilter;
