//! The Adaptive Cuckoo Filter (Mitzenmacher, Pontarelli, Reviriego,
//! ALENEX 2018) — reference [10] of the VCF paper.
//!
//! An ACF fronts a backing store that holds the true keys (its intended
//! deployment: a flow table or cache index). Each slot carries a small
//! *selector* choosing one of `2^s` fingerprint functions. When the
//! system detects a false positive (the filter said yes, the backing
//! store said no), the ACF **adapts**: it bumps the colliding slot's
//! selector and recomputes that slot's fingerprint from the stored key,
//! removing this false positive for all future queries of the same item.
//!
//! The filter proper stores `(fingerprint, selector)` per slot; the
//! backing keys live alongside, exactly as in the original paper's model
//! where the ACF indexes a key-carrying hash table.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vcf_core::CuckooConfig;
use vcf_hash::{mix64, HashKind};
use vcf_traits::{BuildError, Counters, Filter, InsertError, Stats};

/// Number of fingerprint functions selectable per slot (2 selector bits).
pub const SELECTORS: u8 = 4;

const SELECTOR_SALTS: [u64; SELECTORS as usize] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xd6e8_feb8_6659_fd93,
];

#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    fingerprint: u32,
    selector: u8,
    /// The backing-store key this slot indexes (the ACF deployment model
    /// keeps keys in the fronted hash table; adaptation re-reads them).
    key: Vec<u8>,
}

/// An Adaptive Cuckoo Filter: a two-candidate cuckoo filter whose false
/// positives are *removable* at run time.
///
/// Use [`Filter::contains`] for the filter-only (approximate) answer, and
/// [`AdaptiveCuckooFilter::contains_adaptive`] for the system-level
/// answer that consults the backing keys and adapts away detected false
/// positives.
///
/// # Examples
///
/// ```
/// use vcf_baselines::AdaptiveCuckooFilter;
/// use vcf_core::CuckooConfig;
/// use vcf_traits::Filter;
///
/// let mut acf = AdaptiveCuckooFilter::new(CuckooConfig::new(1 << 8))?;
/// acf.insert(b"flow-1")?;
/// assert!(acf.contains(b"flow-1"));
/// // The adaptive query is exact: it verifies against the backing keys.
/// assert!(acf.contains_adaptive(b"flow-1"));
/// assert!(!acf.contains_adaptive(b"never-inserted"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveCuckooFilter {
    slots: Vec<Option<Slot>>,
    buckets: usize,
    slots_per_bucket: usize,
    fingerprint_bits: u32,
    hash: HashKind,
    max_kicks: u32,
    index_mask: u64,
    rng: SmallRng,
    adaptations: u64,
    counters: Counters,
}

impl AdaptiveCuckooFilter {
    /// Builds an empty ACF from `config` (bitmask fields unused).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for invalid geometry.
    pub fn new(config: CuckooConfig) -> Result<Self, BuildError> {
        config.validate()?;
        Ok(Self {
            slots: vec![None; config.buckets * config.slots_per_bucket],
            buckets: config.buckets,
            slots_per_bucket: config.slots_per_bucket,
            fingerprint_bits: config.fingerprint_bits,
            hash: config.hash,
            max_kicks: config.max_kicks,
            index_mask: config.buckets as u64 - 1,
            rng: SmallRng::seed_from_u64(config.seed),
            adaptations: 0,
            counters: Counters::new(),
        })
    }

    /// How many false positives have been adapted away so far.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    /// Selector-dependent fingerprint of `item` (never zero).
    fn fingerprint(&self, item: &[u8], selector: u8) -> u32 {
        let h = self.hash.hash64(item);
        let mixed = mix64(h ^ SELECTOR_SALTS[usize::from(selector) % SELECTOR_SALTS.len()]);
        let mask = if self.fingerprint_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.fingerprint_bits) - 1
        };
        let fp = (mixed as u32) & mask;
        if fp == 0 {
            1
        } else {
            fp
        }
    }

    /// The two candidate buckets. Unlike partial-key hashing, the ACF can
    /// hash the full key for both (the backing store always has it).
    fn candidate_buckets(&self, item: &[u8]) -> [usize; 2] {
        let h = self.hash.hash64(item);
        let b1 = (h & self.index_mask) as usize;
        let b2 = (mix64(h) & self.index_mask) as usize;
        [b1, b2]
    }

    #[inline]
    fn slot_index(&self, bucket: usize, slot: usize) -> usize {
        bucket * self.slots_per_bucket + slot
    }

    fn bucket_slots(&self, bucket: usize) -> std::ops::Range<usize> {
        let start = bucket * self.slots_per_bucket;
        start..start + self.slots_per_bucket
    }

    /// System-level membership: consults the backing keys, adapting away
    /// any false positive it detects. Exact (no false positives, no false
    /// negatives) — this is what the fronted system observes end to end.
    pub fn contains_adaptive(&mut self, item: &[u8]) -> bool {
        let buckets = self.candidate_buckets(item);
        let mut result = false;
        for bucket in buckets {
            for index in self.bucket_slots(bucket) {
                let Some(slot) = self.slots[index].as_ref() else {
                    continue;
                };
                if slot.fingerprint != self.fingerprint(item, slot.selector) {
                    continue;
                }
                if slot.key == item {
                    result = true;
                    continue;
                }
                // Detected false positive: rotate the slot's fingerprint
                // function and recompute from the *stored* key.
                let new_selector = (slot.selector + 1) % SELECTORS;
                let stored_key = slot.key.clone();
                let new_fingerprint = self.fingerprint(&stored_key, new_selector);
                let slot = self.slots[index].as_mut().expect("slot checked above");
                slot.selector = new_selector;
                slot.fingerprint = new_fingerprint;
                self.adaptations += 1;
            }
        }
        result
    }

    fn try_place(&mut self, bucket: usize, entry: &Slot) -> bool {
        for index in self.bucket_slots(bucket) {
            if self.slots[index].is_none() {
                self.slots[index] = Some(entry.clone());
                return true;
            }
        }
        false
    }
}

impl Filter for AdaptiveCuckooFilter {
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        self.counters.add_hashes(1);
        let entry = Slot {
            fingerprint: self.fingerprint(item, 0),
            selector: 0,
            key: item.to_vec(),
        };
        let buckets = self.candidate_buckets(item);
        let mut probes = 0u64;
        for bucket in buckets {
            probes += self.slots_per_bucket as u64;
            if self.try_place(bucket, &entry) {
                self.counters.record_insert(probes, 2);
                return Ok(());
            }
        }

        // Cuckoo eviction: because the backing keys are available, the
        // victim's buckets and fingerprint are recomputed from its key.
        let mut current = entry;
        let mut bucket = buckets[usize::from(self.rng.gen_bool(0.5))];
        let mut kicks = 0u64;
        let mut undo: Vec<(usize, Slot)> = Vec::new();
        for _ in 0..self.max_kicks {
            let slot = self.rng.gen_range(0..self.slots_per_bucket);
            let index = self.slot_index(bucket, slot);
            let victim = self.slots[index].replace(current).expect("bucket was full");
            undo.push((index, victim.clone()));
            kicks += 1;
            self.counters.add_hashes(1);

            let victim_buckets = self.candidate_buckets(&victim.key);
            let alternate = if victim_buckets[0] == bucket {
                victim_buckets[1]
            } else {
                victim_buckets[0]
            };
            probes += self.slots_per_bucket as u64;
            if self.try_place(alternate, &victim) {
                self.counters.add_kicks(kicks);
                self.counters.record_insert(probes, 2 + kicks);
                return Ok(());
            }
            current = victim;
            bucket = alternate;
        }

        // Roll back: atomic failed insert, like the rest of the family.
        for (index, previous) in undo.into_iter().rev() {
            self.slots[index] = Some(previous);
        }
        self.counters.add_kicks(kicks);
        self.counters.record_insert(probes, 2 + kicks);
        self.counters.add_failed_insert();
        Err(InsertError::Full { kicks })
    }

    /// Filter-only membership: fingerprint matching, possibly false
    /// positive (until [`contains_adaptive`](Self::contains_adaptive)
    /// adapts the collision away).
    fn contains(&self, item: &[u8]) -> bool {
        let mut probes = 0u64;
        let mut found = false;
        'outer: for bucket in self.candidate_buckets(item) {
            for index in self.bucket_slots(bucket) {
                probes += 1;
                if let Some(slot) = self.slots[index].as_ref() {
                    if slot.fingerprint == self.fingerprint(item, slot.selector) {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        self.counters.record_lookup(probes, 2);
        found
    }

    fn delete(&mut self, item: &[u8]) -> bool {
        let mut removed = false;
        let mut probes = 0u64;
        'outer: for bucket in self.candidate_buckets(item) {
            for index in self.bucket_slots(bucket) {
                probes += 1;
                // Exact deletion: the backing key disambiguates.
                if self.slots[index].as_ref().is_some_and(|s| s.key == item) {
                    self.slots[index] = None;
                    removed = true;
                    break 'outer;
                }
            }
        }
        self.counters.record_delete(probes, 2);
        removed
    }

    fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    fn capacity(&self) -> usize {
        self.buckets * self.slots_per_bucket
    }

    fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
    }

    fn name(&self) -> String {
        "ACF".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("acf-{i}").into_bytes()
    }

    fn loaded(n: u64) -> AdaptiveCuckooFilter {
        let mut f = AdaptiveCuckooFilter::new(CuckooConfig::new(1 << 10).with_seed(3)).unwrap();
        for i in 0..n {
            f.insert(&key(i)).unwrap();
        }
        f
    }

    #[test]
    fn roundtrip_and_exact_adaptive_queries() {
        let mut f = loaded(1000);
        for i in 0..1000 {
            assert!(f.contains(&key(i)), "plain lookup lost {i}");
            assert!(f.contains_adaptive(&key(i)), "adaptive lookup lost {i}");
        }
        // Adaptive queries are exact for negatives.
        for i in 5000..6000 {
            assert!(!f.contains_adaptive(&key(i)));
        }
    }

    #[test]
    fn adaptation_removes_repeated_false_positives() {
        let mut f = loaded(3500); // ~85% of 4096 slots
                                  // Find alien keys that currently false-positive.
        let mut fp_keys = Vec::new();
        for i in 100_000..400_000u64 {
            if f.contains(&key(i)) {
                fp_keys.push(key(i));
                if fp_keys.len() >= 20 {
                    break;
                }
            }
        }
        assert!(
            !fp_keys.is_empty(),
            "need some false positives to adapt away"
        );
        // One adaptive pass detects and repairs them...
        for k in &fp_keys {
            assert!(!f.contains_adaptive(k));
        }
        assert!(f.adaptations() > 0);
        // ...after which the plain filter no longer false-positives on
        // (almost all of) them. Adaptation can, rarely, create a new
        // collision with a different key; allow a stray survivor.
        let survivors = fp_keys.iter().filter(|k| f.contains(k)).count();
        assert!(
            survivors <= fp_keys.len() / 10,
            "{survivors}/{} false positives survived adaptation",
            fp_keys.len()
        );
    }

    #[test]
    fn adaptation_never_breaks_true_members() {
        let mut f = loaded(3000);
        // Hammer the filter with aliens to force many adaptations.
        for i in 500_000..520_000u64 {
            f.contains_adaptive(&key(i));
        }
        // Every genuine member must still be found by both query paths.
        for i in 0..3000 {
            assert!(f.contains(&key(i)), "adaptation broke member {i}");
            assert!(f.contains_adaptive(&key(i)));
        }
    }

    #[test]
    fn delete_is_exact() {
        let mut f = loaded(100);
        assert!(f.delete(&key(5)));
        assert!(!f.contains_adaptive(&key(5)));
        assert!(!f.delete(&key(5)));
        assert_eq!(f.len(), 99);
    }

    #[test]
    fn failed_insert_rolls_back() {
        let mut f = AdaptiveCuckooFilter::new(CuckooConfig::new(1 << 4).with_seed(1)).unwrap();
        let mut stored = Vec::new();
        for i in 0..200u64 {
            if f.insert(&key(i)).is_ok() {
                stored.push(i);
            }
        }
        assert!(stored.len() < 200, "tiny table must overflow");
        for i in stored {
            assert!(f.contains_adaptive(&key(i)), "rollback lost member {i}");
        }
    }

    #[test]
    fn fingerprints_differ_across_selectors() {
        let f = AdaptiveCuckooFilter::new(CuckooConfig::new(1 << 8)).unwrap();
        let fps: Vec<u32> = (0..SELECTORS).map(|s| f.fingerprint(b"probe", s)).collect();
        let mut unique = fps.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(
            unique.len() >= 3,
            "selectors must yield distinct fingerprints: {fps:?}"
        );
    }
}
