//! The classic Bloom filter (Bloom, 1970) — Table I's reference point.

use vcf_hash::HashKind;
use vcf_traits::{BuildError, Counters, Filter, InsertError, Stats};

/// Geometry of a Bloom-family filter: `m` bits and `k` hash functions.
///
/// # Examples
///
/// ```
/// use vcf_baselines::BloomConfig;
///
/// // Optimal geometry for one million items at 0.1 % false positives.
/// let config = BloomConfig::for_items(1_000_000, 0.001);
/// assert!(config.hashes >= 9 && config.hashes <= 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BloomConfig {
    /// Bit-array length `m`.
    pub bits: usize,
    /// Number of hash functions `k`.
    pub hashes: u32,
    /// Byte-hash function used to derive the `k` probe positions.
    pub hash: HashKind,
    /// Design capacity (used only for `capacity()` reporting).
    pub capacity: usize,
}

impl BloomConfig {
    /// Optimal geometry for `items` items at false-positive rate `fpr`:
    /// `m = −n·ln(ξ)/ln(2)²`, `k = (m/n)·ln 2`.
    pub fn for_items(items: usize, fpr: f64) -> Self {
        let n = items.max(1) as f64;
        let fpr = fpr.clamp(1e-12, 0.5);
        let bits = (-n * fpr.ln() / (2f64.ln() * 2f64.ln())).ceil() as usize;
        let hashes = ((bits as f64 / n) * 2f64.ln()).round().max(1.0) as u32;
        Self {
            bits: bits.max(64),
            hashes,
            hash: HashKind::Fnv1a,
            capacity: items,
        }
    }

    /// Explicit geometry.
    pub fn new(bits: usize, hashes: u32) -> Self {
        Self {
            bits,
            hashes,
            hash: HashKind::Fnv1a,
            capacity: bits / 10,
        }
    }

    /// Sets the hash function.
    #[must_use]
    pub fn with_hash(mut self, hash: HashKind) -> Self {
        self.hash = hash;
        self
    }
}

/// A standard Bloom filter: `k` bit positions per item via double hashing
/// (Kirsch–Mitzenmacher `h1 + i·h2`), no deletion support.
///
/// # Examples
///
/// ```
/// use vcf_baselines::{BloomConfig, BloomFilter};
/// use vcf_traits::Filter;
///
/// let mut bf = BloomFilter::new(BloomConfig::for_items(1000, 0.01))?;
/// bf.insert(b"alpha")?;
/// assert!(bf.contains(b"alpha"));
/// assert!(!bf.supports_deletion());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    config: BloomConfig,
    items: usize,
    counters: Counters,
}

impl BloomFilter {
    /// Builds an empty Bloom filter.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when `bits` or `hashes` is zero.
    pub fn new(config: BloomConfig) -> Result<Self, BuildError> {
        if config.bits == 0 {
            return Err(BuildError::InvalidConfig {
                reason: "bit array must be non-empty".into(),
            });
        }
        if config.hashes == 0 {
            return Err(BuildError::InvalidConfig {
                reason: "at least one hash function is required".into(),
            });
        }
        Ok(Self {
            bits: vec![0u64; config.bits.div_ceil(64)],
            config,
            items: 0,
            counters: Counters::new(),
        })
    }

    /// Bit-array length `m`.
    pub fn bits(&self) -> usize {
        self.config.bits
    }

    /// Number of hash functions `k`.
    pub fn hashes(&self) -> u32 {
        self.config.hashes
    }

    /// Fraction of bits currently set (the fill ratio behind the FPR).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| u64::from(w.count_ones())).sum();
        set as f64 / self.config.bits as f64
    }

    /// The two base hashes for double hashing; `h2` is forced odd so the
    /// probe sequence covers the array.
    #[inline]
    fn base_hashes(&self, item: &[u8]) -> (u64, u64) {
        let h = self.config.hash.hash64(item);
        let h2 = vcf_hash::mix64(h) | 1;
        (h, h2)
    }

    #[inline]
    fn position(&self, h1: u64, h2: u64, i: u32) -> usize {
        (h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.config.bits as u64) as usize
    }

    #[inline]
    fn set_bit(&mut self, pos: usize) {
        self.bits[pos / 64] |= 1u64 << (pos % 64);
    }

    #[inline]
    fn get_bit(&self, pos: usize) -> bool {
        self.bits[pos / 64] >> (pos % 64) & 1 == 1
    }
}

impl Filter for BloomFilter {
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        let (h1, h2) = self.base_hashes(item);
        self.counters.add_hashes(1);
        for i in 0..self.config.hashes {
            let pos = self.position(h1, h2, i);
            self.set_bit(pos);
        }
        self.counters
            .record_insert(u64::from(self.config.hashes), 0);
        self.items += 1;
        Ok(())
    }

    fn contains(&self, item: &[u8]) -> bool {
        let (h1, h2) = self.base_hashes(item);
        let mut probes = 0u64;
        let mut all_set = true;
        for i in 0..self.config.hashes {
            probes += 1;
            if !self.get_bit(self.position(h1, h2, i)) {
                all_set = false;
                break;
            }
        }
        self.counters.record_lookup(probes, 0);
        all_set
    }

    /// Bloom filters cannot delete; always returns `false`.
    fn delete(&mut self, _item: &[u8]) -> bool {
        self.counters.record_delete(0, 0);
        false
    }

    fn len(&self) -> usize {
        self.items
    }

    fn capacity(&self) -> usize {
        self.config.capacity
    }

    fn supports_deletion(&self) -> bool {
        false
    }

    fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
    }

    fn name(&self) -> String {
        "BF".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("bf-{i}").into_bytes()
    }

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(BloomConfig::for_items(10_000, 0.01)).unwrap();
        for i in 0..10_000 {
            bf.insert(&key(i)).unwrap();
        }
        for i in 0..10_000 {
            assert!(bf.contains(&key(i)), "item {i} lost");
        }
    }

    #[test]
    fn fpr_near_design_point() {
        let mut bf = BloomFilter::new(BloomConfig::for_items(20_000, 0.01)).unwrap();
        for i in 0..20_000 {
            bf.insert(&key(i)).unwrap();
        }
        let mut fp = 0u64;
        let aliens = 50_000u64;
        for i in 0..aliens {
            if bf.contains(&key(1_000_000 + i)) {
                fp += 1;
            }
        }
        let fpr = fp as f64 / aliens as f64;
        assert!(fpr < 0.03, "fpr={fpr} should be near 1%");
        assert!(fpr > 0.001, "fpr={fpr} suspiciously low — geometry wrong?");
    }

    #[test]
    fn fill_ratio_near_half_at_design_load() {
        let mut bf = BloomFilter::new(BloomConfig::for_items(5_000, 0.01)).unwrap();
        for i in 0..5_000 {
            bf.insert(&key(i)).unwrap();
        }
        let fill = bf.fill_ratio();
        assert!(
            (fill - 0.5).abs() < 0.05,
            "optimal BF fills to ~50%: {fill}"
        );
    }

    #[test]
    fn delete_is_refused() {
        let mut bf = BloomFilter::new(BloomConfig::new(1024, 4)).unwrap();
        bf.insert(b"x").unwrap();
        assert!(!bf.delete(b"x"));
        assert!(bf.contains(b"x"), "refused delete must not mutate");
    }

    #[test]
    fn rejects_zero_geometry() {
        assert!(BloomFilter::new(BloomConfig::new(0, 4)).is_err());
        assert!(BloomFilter::new(BloomConfig::new(64, 0)).is_err());
    }

    #[test]
    fn for_items_geometry_sane() {
        let c = BloomConfig::for_items(1_000_000, 0.001);
        // ~14.4 bits/item at 0.1%.
        let bits_per_item = c.bits as f64 / 1e6;
        assert!(
            (bits_per_item - 14.4).abs() < 0.5,
            "bits/item={bits_per_item}"
        );
    }

    #[test]
    fn works_with_all_hash_kinds() {
        for kind in HashKind::ALL {
            let mut bf =
                BloomFilter::new(BloomConfig::for_items(1000, 0.01).with_hash(kind)).unwrap();
            for i in 0..1000 {
                bf.insert(&key(i)).unwrap();
            }
            for i in 0..1000 {
                assert!(bf.contains(&key(i)), "{kind}: item {i} lost");
            }
        }
    }
}
