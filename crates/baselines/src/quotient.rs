//! The quotient filter (Bender et al., "Don't thrash: how to cache your
//! hash on flash", VLDB 2012) — the related-work deletable AMQ the paper
//! cites in Section I.
//!
//! A quotient filter stores `p`-bit fingerprints split into a `q`-bit
//! *quotient* (the canonical slot index) and an `r`-bit *remainder*
//! (stored in the slot). Collided fingerprints are kept in sorted *runs*
//! laid out contiguously via linear probing; three metadata bits per slot
//! (`occupied`, `continuation`, `shifted`) make the layout decodable.
//!
//! Implementation note: lookups use the canonical cluster-scan; inserts
//! and deletes use a decode → modify → re-encode of the enclosing
//! "super-cluster" (the contiguous occupied span). Re-encoding is a few
//! dozen slot writes at sane loads and is dramatically easier to prove
//! correct than in-place shifting — the differential tests at the bottom
//! of this file check it slot-for-slot against an exact model.

use vcf_table::PackedTable;
use vcf_traits::{BuildError, Counters, Filter, InsertError, Stats};

/// A run group: the canonical quotient plus its sorted remainders.
type Group = (usize, Vec<u64>);

const OCCUPIED: u64 = 0b001;
const CONTINUATION: u64 = 0b010;
const SHIFTED: u64 = 0b100;
const META_BITS: u32 = 3;

/// A quotient filter over `2^q` slots with `r`-bit remainders.
///
/// Supports insertion, exact-fingerprint membership and true deletion.
/// Unlike the cuckoo family it degrades gracefully (no relocation
/// cascades) but its clusters lengthen super-linearly past ~75 % load, so
/// [`QuotientFilter::new`] sizes the table for that operating point.
///
/// # Examples
///
/// ```
/// use vcf_baselines::QuotientFilter;
/// use vcf_traits::Filter;
///
/// let mut qf = QuotientFilter::new(10, 11)?; // 2^10 slots, 11-bit remainders
/// qf.insert(b"event-1")?;
/// assert!(qf.contains(b"event-1"));
/// assert!(qf.delete(b"event-1"));
/// assert!(!qf.contains(b"event-1"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuotientFilter {
    slots: PackedTable,
    quotient_bits: u32,
    remainder_bits: u32,
    len: usize,
    hash: vcf_hash::HashKind,
    counters: Counters,
}

impl QuotientFilter {
    /// Builds a quotient filter with `2^quotient_bits` slots and
    /// `remainder_bits`-bit remainders.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when `quotient_bits` is outside `3..=28`
    /// or `remainder_bits` outside `2..=32`.
    pub fn new(quotient_bits: u32, remainder_bits: u32) -> Result<Self, BuildError> {
        if !(3..=28).contains(&quotient_bits) {
            return Err(BuildError::InvalidConfig {
                reason: format!("quotient bits must be 3..=28, got {quotient_bits}"),
            });
        }
        if !(2..=32).contains(&remainder_bits) {
            return Err(BuildError::InvalidFingerprintBits {
                got: remainder_bits,
                min: 2,
                max: 32,
            });
        }
        let slots = PackedTable::new(1usize << quotient_bits, remainder_bits + META_BITS)?;
        Ok(Self {
            slots,
            quotient_bits,
            remainder_bits,
            len: 0,
            hash: vcf_hash::HashKind::Fnv1a,
            counters: Counters::new(),
        })
    }

    /// Sizes a filter for `items` items at ≤ 75 % load with a false
    /// positive rate near `fpr`.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from [`QuotientFilter::new`].
    pub fn for_items(items: usize, fpr: f64) -> Result<Self, BuildError> {
        let slots_needed = ((items.max(1) as f64) / 0.75).ceil() as usize;
        let quotient_bits = slots_needed
            .next_power_of_two()
            .trailing_zeros()
            .clamp(3, 28);
        // FPR ≈ 2^-r · α for a quotient filter; solve for r at α = 0.75.
        let remainder_bits = ((0.75 / fpr.clamp(1e-9, 0.5)).log2().ceil() as u32).clamp(2, 32);
        Self::new(quotient_bits, remainder_bits)
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        1usize << self.quotient_bits
    }

    /// Remainder width in bits.
    pub fn remainder_bits(&self) -> u32 {
        self.remainder_bits
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots() - 1
    }

    #[inline]
    fn inc(&self, i: usize) -> usize {
        (i + 1) & self.mask()
    }

    #[inline]
    fn dec(&self, i: usize) -> usize {
        (i + self.mask()) & self.mask()
    }

    fn fingerprint_of(&self, item: &[u8]) -> (usize, u64) {
        let h = self.hash.hash64(item);
        let quotient = (h >> self.remainder_bits) as usize & self.mask();
        let remainder = h & ((1u64 << self.remainder_bits) - 1);
        (quotient, remainder)
    }

    // --- raw slot access -------------------------------------------------

    #[inline]
    fn raw(&self, i: usize) -> u64 {
        self.slots.get(i)
    }

    #[inline]
    fn set_raw(&mut self, i: usize, value: u64) {
        self.slots.set(i, value);
    }

    #[inline]
    fn is_empty_slot(&self, i: usize) -> bool {
        self.raw(i) & (OCCUPIED | CONTINUATION | SHIFTED) == 0
    }

    #[inline]
    fn is_occupied(&self, i: usize) -> bool {
        self.raw(i) & OCCUPIED != 0
    }

    #[inline]
    fn is_continuation(&self, i: usize) -> bool {
        self.raw(i) & CONTINUATION != 0
    }

    #[inline]
    fn is_shifted(&self, i: usize) -> bool {
        self.raw(i) & SHIFTED != 0
    }

    #[inline]
    fn remainder(&self, i: usize) -> u64 {
        self.raw(i) >> META_BITS
    }

    /// Canonical cluster walk: the slot where the run for quotient `q`
    /// starts. Precondition: `is_occupied(q)`.
    fn find_run_start(&self, q: usize) -> usize {
        // Walk left to the cluster start.
        let mut b = q;
        while self.is_shifted(b) {
            b = self.dec(b);
        }
        // Walk runs forward: one run per occupied slot in b..=q.
        let mut s = b;
        while b != q {
            // Skip to the end of the current run.
            loop {
                s = self.inc(s);
                if !self.is_continuation(s) {
                    break;
                }
            }
            // Advance b to the next occupied canonical slot.
            loop {
                b = self.inc(b);
                if self.is_occupied(b) {
                    break;
                }
            }
        }
        s
    }

    // --- decode / re-encode ---------------------------------------------

    /// Decodes the maximal contiguous occupied span ("super-cluster")
    /// containing slot `q` into `(span_start, groups)`, where each group
    /// is `(quotient, sorted remainders)` in cluster order. Returns `None`
    /// when slot `q` belongs to no span and is not occupied.
    fn decode_span(&self, q: usize) -> Option<(usize, Vec<Group>)> {
        if self.is_empty_slot(q) && !self.is_occupied(q) {
            return None;
        }
        // The span is bounded by empty slots; find its physical start.
        let mut start = q;
        while !self.is_empty_slot(self.dec(start)) {
            start = self.dec(start);
            debug_assert_ne!(start, q, "table must always keep one empty slot");
        }
        // An element may sit at `q` while `q`'s canonical bit lives within
        // the same span, so walking the span decodes everything relevant.
        // Cluster starts are unshifted; the span start is one.
        debug_assert!(!self.is_shifted(start));

        // Collect canonical quotients (occupied bits) and runs in order.
        let mut quotients = Vec::new();
        let mut runs: Vec<Vec<u64>> = Vec::new();
        let mut i = start;
        while !self.is_empty_slot(i) || self.is_occupied(i) {
            if self.is_occupied(i) {
                quotients.push(i);
            }
            if !self.is_empty_slot(i) {
                if self.is_continuation(i) {
                    runs.last_mut()
                        .expect("continuation implies a run head")
                        .push(self.remainder(i));
                } else {
                    runs.push(vec![self.remainder(i)]);
                }
            }
            i = self.inc(i);
            if i == start {
                break; // full wrap (cannot happen with one empty slot)
            }
        }
        debug_assert_eq!(quotients.len(), runs.len(), "one run per occupied quotient");
        let groups = quotients.into_iter().zip(runs).collect();
        Some((start, groups))
    }

    /// Clears every slot in the half-open modular range `[start, end)`.
    fn clear_range(&mut self, start: usize, count: usize) {
        let mut i = start;
        for _ in 0..count {
            self.set_raw(i, 0);
            i = self.inc(i);
        }
    }

    /// Re-encodes `groups` (quotient order along the cluster) starting
    /// from the first group's canonical slot, writing runs back-to-back
    /// with correct metadata bits.
    fn encode_groups(&mut self, groups: &[Group]) {
        if groups.is_empty() {
            return;
        }
        let m = self.slots();
        let base = groups[0].0;
        let unwrap = |x: usize| (x + m - base) % m;
        let mut pos = 0usize; // unwrapped write cursor
        for (quotient, remainders) in groups {
            let canonical = unwrap(*quotient);
            let run_start = canonical.max(pos);
            for (j, &remainder) in remainders.iter().enumerate() {
                let slot = (base + run_start + j) & self.mask();
                let mut bits = remainder << META_BITS;
                if j > 0 {
                    bits |= CONTINUATION;
                }
                if slot != *quotient {
                    bits |= SHIFTED;
                }
                // Preserve the slot's occupied bit (it describes the
                // canonical quotient, not the resident remainder).
                bits |= self.raw(slot) & OCCUPIED;
                self.set_raw(slot, bits);
            }
            pos = run_start + remainders.len();
        }
        // Set occupied bits for every encoded quotient.
        for (quotient, _) in groups {
            self.set_raw(*quotient, self.raw(*quotient) | OCCUPIED);
        }
    }

    fn span_len(groups: &[Group], m: usize) -> usize {
        if groups.is_empty() {
            return 0;
        }
        let base = groups[0].0;
        let mut pos = 0usize;
        for (quotient, remainders) in groups {
            let canonical = (*quotient + m - base) % m;
            pos = canonical.max(pos) + remainders.len();
        }
        pos
    }
}

impl Filter for QuotientFilter {
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        // One empty slot must always remain so cluster scans terminate.
        if self.len + 1 >= self.slots() {
            self.counters.record_insert(0, 0);
            self.counters.add_failed_insert();
            return Err(InsertError::Full { kicks: 0 });
        }
        let (q, r) = self.fingerprint_of(item);
        self.counters.add_hashes(1);

        // Fast path: canonical slot free and unoccupied.
        if self.is_empty_slot(q) && !self.is_occupied(q) {
            self.set_raw(q, (r << META_BITS) | OCCUPIED);
            self.len += 1;
            self.counters.record_insert(1, 1);
            return Ok(());
        }

        // Slow path: decode the span (possibly starting a new one at q if
        // q is empty but sits right before an existing span — decode_span
        // handles only non-empty q, so handle the adjacent case inline).
        let Some((start, mut groups)) = self.decode_span(q) else {
            // q is empty and unoccupied but the fast path failed —
            // unreachable, kept for defensive clarity.
            self.set_raw(q, (r << META_BITS) | OCCUPIED);
            self.len += 1;
            self.counters.record_insert(1, 1);
            return Ok(());
        };
        let m = self.slots();
        let old_len = Self::span_len(&groups, m).max({
            // physical span length: from start to the first empty slot
            let mut count = 0usize;
            let mut i = start;
            while !self.is_empty_slot(i) {
                count += 1;
                i = self.inc(i);
            }
            count
        });

        // Insert (q, r) into the group list, keeping cluster order.
        let base = groups[0].0;
        let unwrap = |x: usize| (x + m - base) % m;
        match groups.binary_search_by_key(&unwrap(q), |(gq, _)| unwrap(*gq)) {
            Ok(index) => {
                let remainders = &mut groups[index].1;
                let at = remainders.partition_point(|&existing| existing < r);
                remainders.insert(at, r);
            }
            Err(index) => groups.insert(index, (q, vec![r])),
        }

        // The new first group may have an earlier canonical slot than the
        // old span start (a fresh run head in front).
        let new_base = groups[0].0;
        let probes = old_len as u64 + 2;
        self.clear_range(start, old_len);
        // Also clear occupied bits the old span held (clear_range did) and
        // rebuild everything.
        self.encode_groups(&groups);
        let _ = new_base;
        self.len += 1;
        self.counters.record_insert(probes, 1);
        Ok(())
    }

    fn contains(&self, item: &[u8]) -> bool {
        let (q, r) = self.fingerprint_of(item);
        if !self.is_occupied(q) {
            self.counters.record_lookup(1, 1);
            return false;
        }
        let mut s = self.find_run_start(q);
        let mut probes = 1u64;
        loop {
            probes += 1;
            if self.remainder(s) == r {
                self.counters.record_lookup(probes, 1);
                return true;
            }
            s = self.inc(s);
            if !self.is_continuation(s) {
                break;
            }
        }
        self.counters.record_lookup(probes, 1);
        false
    }

    fn delete(&mut self, item: &[u8]) -> bool {
        let (q, r) = self.fingerprint_of(item);
        if !self.is_occupied(q) {
            self.counters.record_delete(1, 1);
            return false;
        }
        let Some((start, mut groups)) = self.decode_span(q) else {
            self.counters.record_delete(1, 1);
            return false;
        };
        let _m = self.slots();
        let Some(index) = groups.iter().position(|(gq, _)| *gq == q) else {
            self.counters.record_delete(2, 1);
            return false;
        };
        let Ok(at) = groups[index].1.binary_search(&r) else {
            self.counters.record_delete(2, 1);
            return false;
        };
        groups[index].1.remove(at);
        if groups[index].1.is_empty() {
            groups.remove(index);
        }

        let old_len = {
            let mut count = 0usize;
            let mut i = start;
            while !self.is_empty_slot(i) {
                count += 1;
                i = self.inc(i);
            }
            count
        };
        self.clear_range(start, old_len);
        // Re-encoding a span whose first group moved may split it into
        // independent clusters; encode_groups places each run at
        // max(canonical, cursor), which is exactly the cluster layout.
        // Groups after a gap re-anchor at their canonical slots.
        self.encode_groups(&groups);
        self.len -= 1;
        self.counters.record_delete(old_len as u64 + 1, 1);
        true
    }

    fn len(&self) -> usize {
        self.len
    }

    fn capacity(&self) -> usize {
        self.slots()
    }

    fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
    }

    fn name(&self) -> String {
        "QF".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use vcf_hash::SplitMix64;

    fn key(i: u64) -> Vec<u8> {
        format!("qf-{i}").into_bytes()
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(QuotientFilter::new(2, 8).is_err());
        assert!(QuotientFilter::new(29, 8).is_err());
        assert!(QuotientFilter::new(10, 1).is_err());
        assert!(QuotientFilter::new(10, 33).is_err());
        assert!(QuotientFilter::new(10, 8).is_ok());
    }

    #[test]
    fn roundtrip() {
        let mut qf = QuotientFilter::new(8, 10).unwrap();
        qf.insert(b"a").unwrap();
        assert!(qf.contains(b"a"));
        assert_eq!(qf.len(), 1);
        assert!(qf.delete(b"a"));
        assert!(!qf.contains(b"a"));
        assert_eq!(qf.len(), 0);
        assert!(!qf.delete(b"a"));
    }

    #[test]
    fn no_false_negatives_at_75_percent() {
        let mut qf = QuotientFilter::new(12, 12).unwrap();
        let n = (qf.slots() * 3) / 4;
        for i in 0..n as u64 {
            qf.insert(&key(i)).unwrap();
        }
        for i in 0..n as u64 {
            assert!(qf.contains(&key(i)), "item {i} lost");
        }
    }

    #[test]
    fn duplicates_are_multiset() {
        let mut qf = QuotientFilter::new(8, 10).unwrap();
        qf.insert(b"dup").unwrap();
        qf.insert(b"dup").unwrap();
        assert!(qf.delete(b"dup"));
        assert!(qf.contains(b"dup"), "second copy must survive");
        assert!(qf.delete(b"dup"));
        assert!(!qf.contains(b"dup"));
    }

    #[test]
    fn refuses_insert_when_one_slot_left() {
        let mut qf = QuotientFilter::new(4, 8).unwrap();
        let mut stored = 0;
        for i in 0..200u64 {
            if qf.insert(&key(i)).is_ok() {
                stored += 1;
            }
        }
        assert_eq!(stored, qf.slots() - 1, "must keep exactly one empty slot");
    }

    /// The heavyweight check: the quotient filter is EXACT over
    /// (quotient, remainder) pairs, so a multiset model predicts every
    /// answer. Random interleavings of insert/delete/lookup must agree
    /// with the model perfectly.
    #[test]
    fn differential_against_exact_model() {
        let mut qf = QuotientFilter::new(7, 9).unwrap(); // 128 slots — collisions guaranteed
        let mut model: HashMap<(usize, u64), usize> = HashMap::new();
        let mut live_keys: Vec<u64> = Vec::new();
        let mut rng = SplitMix64::new(42);
        let mut total = 0usize;

        for step in 0..20_000u64 {
            let choice = rng.next_below(10);
            if choice < 5 && total < 90 {
                // insert a fresh key
                let k = rng.next_u64();
                let (q, r) = qf.fingerprint_of(&key(k));
                if qf.insert(&key(k)).is_ok() {
                    *model.entry((q, r)).or_insert(0) += 1;
                    live_keys.push(k);
                    total += 1;
                }
            } else if choice < 8 && !live_keys.is_empty() {
                // delete a live key
                let at = rng.next_below(live_keys.len() as u64) as usize;
                let k = live_keys.swap_remove(at);
                let (q, r) = qf.fingerprint_of(&key(k));
                assert!(
                    qf.delete(&key(k)),
                    "step {step}: delete of live key {k} failed"
                );
                let count = model.get_mut(&(q, r)).expect("model holds the key");
                *count -= 1;
                if *count == 0 {
                    model.remove(&(q, r));
                }
                total -= 1;
            } else {
                // lookup a random key (live or not): answers must match
                // the model exactly (the QF is exact per fingerprint).
                let k = if !live_keys.is_empty() && rng.next_below(2) == 0 {
                    live_keys[rng.next_below(live_keys.len() as u64) as usize]
                } else {
                    rng.next_u64()
                };
                let (q, r) = qf.fingerprint_of(&key(k));
                let expected = model.contains_key(&(q, r));
                assert_eq!(
                    qf.contains(&key(k)),
                    expected,
                    "step {step}: lookup divergence for key {k} (q={q}, r={r:#x})"
                );
            }
            // Global invariant: count agreement.
            let model_total: usize = model.values().sum();
            assert_eq!(qf.len(), model_total, "step {step}: len diverged");
        }
        // Drain everything; the table must end pristine.
        for k in live_keys {
            assert!(qf.delete(&key(k)));
        }
        assert_eq!(qf.len(), 0);
        for i in 0..qf.slots() {
            assert!(
                qf.is_empty_slot(i) && !qf.is_occupied(i),
                "slot {i} not clean"
            );
        }
    }

    #[test]
    fn wraparound_clusters_work() {
        // Force quotients near the top of a tiny table so runs wrap.
        let mut qf = QuotientFilter::new(3, 16).unwrap(); // 8 slots
        let mut inserted = Vec::new();
        for i in 0..400u64 {
            let k = key(i);
            let (q, _) = qf.fingerprint_of(&k);
            if q >= 6 && inserted.len() < 5 {
                qf.insert(&k).unwrap();
                inserted.push(k);
            }
        }
        assert!(inserted.len() >= 3, "need wrapping inserts for this test");
        for k in &inserted {
            assert!(qf.contains(k), "wrapped item lost");
        }
        for k in &inserted {
            assert!(qf.delete(k));
        }
        assert_eq!(qf.len(), 0);
    }

    #[test]
    fn for_items_sizing() {
        let qf = QuotientFilter::for_items(10_000, 1e-3).unwrap();
        assert!(qf.slots() >= 10_000 * 4 / 3);
        assert!(qf.remainder_bits() >= 9);
    }

    #[test]
    fn fpr_close_to_theory() {
        let mut qf = QuotientFilter::new(13, 12).unwrap();
        let n = qf.slots() * 3 / 4;
        for i in 0..n as u64 {
            qf.insert(&key(i)).unwrap();
        }
        let aliens = 100_000u64;
        let fp = (0..aliens)
            .filter(|i| qf.contains(&key(1_000_000 + i)))
            .count();
        let fpr = fp as f64 / aliens as f64;
        // ξ ≈ α · 2^-r = 0.75 / 4096 ≈ 1.8e-4.
        assert!(fpr < 6e-4, "fpr={fpr}");
    }
}
