//! The d-left Counting Bloom filter (Bonomi et al., ESA 2006).
//!
//! dlCBF replaces CBF's flat counter array with `d` subtables of buckets
//! holding (fingerprint, counter) cells; insertion places the fingerprint
//! into the least-loaded candidate bucket, breaking ties to the left.
//! The paper cites it (Section II-A) as achieving half the space of CBF
//! at equal false-positive rate; it completes the Table I comparison.

use vcf_hash::HashKind;
use vcf_traits::{BuildError, Counters, Filter, InsertError, Stats};

/// Geometry of a [`DlCountingBloomFilter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DlCbfConfig {
    /// Number of subtables `d` (4 in the original construction).
    pub subtables: usize,
    /// Buckets per subtable.
    pub buckets_per_subtable: usize,
    /// Cells per bucket (8 in the original construction).
    pub cells_per_bucket: usize,
    /// Fingerprint ("remainder") width in bits.
    pub fingerprint_bits: u32,
    /// Byte-hash function.
    pub hash: HashKind,
}

impl DlCbfConfig {
    /// The original paper's shape: 4 subtables, 8 cells per bucket,
    /// sized for `items` items at ~75 % target load.
    pub fn for_items(items: usize) -> Self {
        let cells_needed = (items as f64 / 0.75).ceil() as usize;
        let buckets_total = cells_needed.div_ceil(8).max(4);
        Self {
            subtables: 4,
            buckets_per_subtable: buckets_total.div_ceil(4).next_power_of_two(),
            cells_per_bucket: 8,
            fingerprint_bits: 14,
            hash: HashKind::Fnv1a,
        }
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cell {
    fingerprint: u32,
    count: u8,
}

/// A d-left Counting Bloom filter: `d` subtables, least-loaded placement
/// with left tie-breaking, per-cell counters for multiset semantics.
///
/// # Examples
///
/// ```
/// use vcf_baselines::{DlCbfConfig, DlCountingBloomFilter};
/// use vcf_traits::Filter;
///
/// let mut dlcbf = DlCountingBloomFilter::new(DlCbfConfig::for_items(1000))?;
/// dlcbf.insert(b"conn:443")?;
/// assert!(dlcbf.contains(b"conn:443"));
/// assert!(dlcbf.delete(b"conn:443"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DlCountingBloomFilter {
    cells: Vec<Cell>,
    config: DlCbfConfig,
    items: usize,
    counters: Counters,
}

impl DlCountingBloomFilter {
    /// Builds an empty dlCBF.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for degenerate geometry.
    pub fn new(config: DlCbfConfig) -> Result<Self, BuildError> {
        if config.subtables == 0 {
            return Err(BuildError::InvalidConfig {
                reason: "need at least 1 subtable".into(),
            });
        }
        if config.buckets_per_subtable == 0 {
            return Err(BuildError::InvalidBucketCount {
                got: 0,
                requirement: "positive",
            });
        }
        if config.cells_per_bucket == 0 || config.cells_per_bucket > 16 {
            return Err(BuildError::InvalidBucketSize {
                got: config.cells_per_bucket,
            });
        }
        if !(2..=32).contains(&config.fingerprint_bits) {
            return Err(BuildError::InvalidFingerprintBits {
                got: config.fingerprint_bits,
                min: 2,
                max: 32,
            });
        }
        let total = config.subtables * config.buckets_per_subtable * config.cells_per_bucket;
        Ok(Self {
            cells: vec![Cell::default(); total],
            config,
            items: 0,
            counters: Counters::new(),
        })
    }

    /// Total cell capacity.
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// `(fingerprint, candidate bucket in each subtable)`.
    fn key_of(&self, item: &[u8]) -> (u32, Vec<usize>) {
        let h = self.config.hash.hash64(item);
        let fp_mask = if self.config.fingerprint_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.config.fingerprint_bits) - 1
        };
        let mut fp = ((h >> 32) as u32) & fp_mask;
        if fp == 0 {
            fp = 1;
        }
        // One candidate bucket per subtable, derived by remixing; this is
        // the "d independent choices" of d-left hashing.
        let buckets = (0..self.config.subtables)
            .map(|t| {
                let ht = vcf_hash::mix64(h ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                (ht % self.config.buckets_per_subtable as u64) as usize
            })
            .collect();
        (fp, buckets)
    }

    #[inline]
    fn bucket_range(&self, subtable: usize, bucket: usize) -> std::ops::Range<usize> {
        let start =
            (subtable * self.config.buckets_per_subtable + bucket) * self.config.cells_per_bucket;
        start..start + self.config.cells_per_bucket
    }

    fn bucket_load(&self, subtable: usize, bucket: usize) -> usize {
        self.cells[self.bucket_range(subtable, bucket)]
            .iter()
            .filter(|c| c.count > 0)
            .count()
    }
}

impl Filter for DlCountingBloomFilter {
    fn insert(&mut self, item: &[u8]) -> Result<(), InsertError> {
        let (fp, buckets) = self.key_of(item);
        self.counters.add_hashes(1 + self.config.subtables as u64);
        let mut probes = 0u64;

        // If any candidate bucket already holds this fingerprint, bump its
        // counter (multiset semantics).
        for (t, &b) in buckets.iter().enumerate() {
            let range = self.bucket_range(t, b);
            probes += self.config.cells_per_bucket as u64;
            for i in range {
                if self.cells[i].count > 0 && self.cells[i].fingerprint == fp {
                    if self.cells[i].count == u8::MAX {
                        self.counters.record_insert(probes, buckets.len() as u64);
                        return Err(InsertError::CounterOverflow);
                    }
                    self.cells[i].count += 1;
                    self.items += 1;
                    self.counters.record_insert(probes, buckets.len() as u64);
                    return Ok(());
                }
            }
        }

        // d-left placement: least-loaded candidate, leftmost subtable wins
        // ties.
        let (best_t, best_b) = buckets
            .iter()
            .enumerate()
            .map(|(t, &b)| (self.bucket_load(t, b), t, b))
            .min_by_key(|&(load, t, _)| (load, t))
            .map(|(_, t, b)| (t, b))
            .expect("at least one subtable");
        let range = self.bucket_range(best_t, best_b);
        for i in range {
            probes += 1;
            if self.cells[i].count == 0 {
                self.cells[i] = Cell {
                    fingerprint: fp,
                    count: 1,
                };
                self.items += 1;
                self.counters.record_insert(probes, buckets.len() as u64);
                return Ok(());
            }
        }
        self.counters.record_insert(probes, buckets.len() as u64);
        self.counters.add_failed_insert();
        Err(InsertError::Full { kicks: 0 })
    }

    fn contains(&self, item: &[u8]) -> bool {
        let (fp, buckets) = self.key_of(item);
        let mut probes = 0u64;
        let mut found = false;
        'outer: for (t, &b) in buckets.iter().enumerate() {
            for i in self.bucket_range(t, b) {
                probes += 1;
                if self.cells[i].count > 0 && self.cells[i].fingerprint == fp {
                    found = true;
                    break 'outer;
                }
            }
        }
        self.counters.record_lookup(probes, buckets.len() as u64);
        found
    }

    fn delete(&mut self, item: &[u8]) -> bool {
        let (fp, buckets) = self.key_of(item);
        let mut probes = 0u64;
        let mut removed = false;
        'outer: for (t, &b) in buckets.iter().enumerate() {
            for i in self.bucket_range(t, b) {
                probes += 1;
                if self.cells[i].count > 0 && self.cells[i].fingerprint == fp {
                    self.cells[i].count -= 1;
                    if self.cells[i].count == 0 {
                        self.cells[i].fingerprint = 0;
                    }
                    self.items -= 1;
                    removed = true;
                    break 'outer;
                }
            }
        }
        self.counters.record_delete(probes, buckets.len() as u64);
        removed
    }

    fn len(&self) -> usize {
        self.items
    }

    fn capacity(&self) -> usize {
        self.cells.len()
    }

    fn stats(&self) -> Stats {
        self.counters.snapshot()
    }

    fn reset_stats(&mut self) {
        self.counters.reset();
    }

    fn name(&self) -> String {
        "dlCBF".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("dlcbf-{i}").into_bytes()
    }

    #[test]
    fn roundtrip() {
        let mut f = DlCountingBloomFilter::new(DlCbfConfig::for_items(100)).unwrap();
        f.insert(b"a").unwrap();
        assert!(f.contains(b"a"));
        assert!(f.delete(b"a"));
        assert!(!f.contains(b"a"));
    }

    #[test]
    fn no_false_negatives_at_design_load() {
        let mut f = DlCountingBloomFilter::new(DlCbfConfig::for_items(10_000)).unwrap();
        for i in 0..10_000 {
            f.insert(&key(i)).unwrap();
        }
        for i in 0..10_000 {
            assert!(f.contains(&key(i)), "item {i} lost");
        }
    }

    #[test]
    fn multiset_semantics() {
        let mut f = DlCountingBloomFilter::new(DlCbfConfig::for_items(100)).unwrap();
        f.insert(b"dup").unwrap();
        f.insert(b"dup").unwrap();
        assert!(f.delete(b"dup"));
        assert!(f.contains(b"dup"));
        assert!(f.delete(b"dup"));
        assert!(!f.contains(b"dup"));
    }

    #[test]
    fn left_bias_balances_load() {
        let mut f = DlCountingBloomFilter::new(DlCbfConfig::for_items(20_000)).unwrap();
        for i in 0..15_000 {
            f.insert(&key(i)).unwrap();
        }
        // With d-left placement the max bucket load stays near the mean;
        // verify no subtable-0 bucket overflowed while others are empty.
        let mut max_load = 0;
        for t in 0..f.config.subtables {
            for b in 0..f.config.buckets_per_subtable {
                max_load = max_load.max(f.bucket_load(t, b));
            }
        }
        assert!(
            max_load <= f.config.cells_per_bucket,
            "bucket overflow escaped"
        );
    }

    #[test]
    fn rejects_bad_geometry() {
        let mut c = DlCbfConfig::for_items(10);
        c.subtables = 0;
        assert!(DlCountingBloomFilter::new(c).is_err());
        let mut c = DlCbfConfig::for_items(10);
        c.cells_per_bucket = 0;
        assert!(DlCountingBloomFilter::new(c).is_err());
        let mut c = DlCbfConfig::for_items(10);
        c.fingerprint_bits = 1;
        assert!(DlCountingBloomFilter::new(c).is_err());
    }

    #[test]
    fn len_tracks_multiset_size() {
        let mut f = DlCountingBloomFilter::new(DlCbfConfig::for_items(100)).unwrap();
        f.insert(b"x").unwrap();
        f.insert(b"x").unwrap();
        f.insert(b"y").unwrap();
        assert_eq!(f.len(), 3);
        f.delete(b"x");
        assert_eq!(f.len(), 2);
    }
}
