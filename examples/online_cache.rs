//! The paper's motivating scenario: an online cache-admission filter
//! under sustained insert/delete churn at high occupancy.
//!
//! A cache tracks which objects are resident; every admission inserts a
//! key, every eviction deletes one, and hot-path lookups ask "is this
//! object cached?". The filter must stay ~90 % full forever — exactly the
//! regime where standard CF's eviction cascades hurt. This example
//! replays the same churn trace through CF, VCF and DVCF and reports
//! throughput and relocation counts.
//!
//! ```text
//! cargo run --release --example online_cache
//! ```

use std::time::Instant;
use vertical_cuckoo_filters::baselines::CuckooFilter;
use vertical_cuckoo_filters::traits::Filter;
use vertical_cuckoo_filters::vcf::{CuckooConfig, Dvcf, VerticalCuckooFilter};
use vertical_cuckoo_filters::workloads::{ChurnConfig, ChurnTrace, Op};

fn replay(filter: &mut dyn Filter, trace: &ChurnTrace) -> (f64, u64, u64) {
    let start = Instant::now();
    let mut false_negatives = 0u64;
    for op in trace.iter() {
        match op {
            Op::Insert(key) => {
                let _ = filter.insert(key);
            }
            Op::Delete(key) => {
                filter.delete(key);
            }
            Op::Lookup {
                key,
                expected_present,
            } => {
                if *expected_present && !filter.contains(key) {
                    false_negatives += 1;
                }
            }
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    (
        trace.ops().len() as f64 / seconds,
        filter.stats().kicks,
        false_negatives,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let slots = 1usize << 16;
    let trace = ChurnTrace::generate(ChurnConfig {
        working_set: slots * 90 / 100, // steady 90 % occupancy
        rounds: 100_000,
        lookups_per_round: 2,
        positive_fraction: 0.5,
        seed: 7,
    });
    println!(
        "churn trace: {} ops at ~90% occupancy of {} slots\n",
        trace.ops().len(),
        slots
    );

    let config = CuckooConfig::with_total_slots(slots).with_seed(99);
    let mut filters: Vec<Box<dyn Filter>> = vec![
        Box::new(CuckooFilter::new(config)?),
        Box::new(VerticalCuckooFilter::new(config)?),
        Box::new(Dvcf::with_r(config, 0.5)?),
    ];

    println!(
        "{:>12}  {:>12}  {:>14}  {:>8}",
        "filter", "ops/sec", "relocations", "lost"
    );
    for filter in filters.iter_mut() {
        let (ops_per_sec, kicks, false_negatives) = replay(filter.as_mut(), &trace);
        println!(
            "{:>12}  {:>12.0}  {:>14}  {:>8}",
            filter.name(),
            ops_per_sec,
            kicks,
            false_negatives
        );
        // An item the cache believes resident must never be reported
        // absent (a false negative would serve stale bytes from origin).
        assert_eq!(
            false_negatives,
            0,
            "{} produced false negatives",
            filter.name()
        );
    }

    println!("\nVCF sustains the same churn with far fewer fingerprint relocations —");
    println!("the paper's core claim for insertion-intensive online applications.");
    Ok(())
}
