//! Snapshot persistence: survive a process restart without replaying
//! history.
//!
//! An online service tracking live sessions can serialize its VCF on
//! shutdown (or periodically) and restore it bit-exactly on startup —
//! including the false-positive behaviour, since the table bytes are
//! identical.
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use std::fs;
use vertical_cuckoo_filters::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("vcf_sessions.snapshot");

    // --- process A: build up state and persist it -----------------------
    let mut filter = VerticalCuckooFilter::new(CuckooConfig::new(1 << 12).with_seed(2021))?;
    for i in 0..10_000u64 {
        filter.insert(format!("session-{i}").as_bytes())?;
    }
    let snapshot = filter.to_snapshot();
    fs::write(&path, &snapshot)?;
    println!(
        "process A: persisted {} sessions in {} bytes ({} bytes/item)",
        filter.len(),
        snapshot.len(),
        snapshot.len() / filter.len()
    );

    // --- process B: restore and keep serving ----------------------------
    let bytes = fs::read(&path)?;
    let mut restored = VerticalCuckooFilter::from_snapshot(&bytes)?;
    println!(
        "process B: restored {} sessions, load factor {:.1}%",
        restored.len(),
        restored.load_factor() * 100.0
    );

    // Every session survives the restart...
    for i in 0..10_000u64 {
        assert!(restored.contains(format!("session-{i}").as_bytes()));
    }
    // ...and the filter keeps working: expire some, admit new ones.
    for i in 0..1_000u64 {
        assert!(restored.delete(format!("session-{i}").as_bytes()));
    }
    for i in 10_000..11_000u64 {
        restored.insert(format!("session-{i}").as_bytes())?;
    }
    println!("process B: after churn, {} sessions live", restored.len());

    // Corruption is detected, not silently accepted.
    let mut corrupted = bytes.clone();
    corrupted[0] ^= 0xff;
    assert!(VerticalCuckooFilter::from_snapshot(&corrupted).is_err());
    println!("corrupted snapshot correctly rejected");

    fs::remove_file(&path).ok();
    Ok(())
}
