//! Stream deduplication with a Vertical Cuckoo Filter.
//!
//! A telemetry pipeline sees a stream of event records, some duplicated by
//! at-least-once delivery. A VCF in front of the expensive sink answers
//! "seen before?" in O(1) with a bounded false-positive rate (a duplicate
//! wrongly admitted is harmless; a *new* event wrongly dropped is not — so
//! the no-false-negative property is the load-bearing guarantee... in the
//! inverted sense: we drop only when the filter says "seen", accepting a
//! tiny rate of wrongly dropped events, which we measure here).
//!
//! The event source is the synthetic HIGGS-like record generator — the
//! same substitution the benchmark harness uses for the paper's dataset.
//!
//! ```text
//! cargo run --release --example stream_dedup
//! ```

use vertical_cuckoo_filters::traits::Filter;
use vertical_cuckoo_filters::vcf::{CuckooConfig, VerticalCuckooFilter};
use vertical_cuckoo_filters::workloads::HiggsDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let unique_events = 200_000usize;
    let duplicate_every = 5; // every 5th delivery is a replay

    let dataset = HiggsDataset::generate(unique_events, 1234);
    // 2^18 slots: the 200k working set lands at ~76 % occupancy.
    let config = CuckooConfig::with_total_slots(1 << 18).with_seed(5);
    let mut seen = VerticalCuckooFilter::new(config)?;

    let mut admitted = 0usize;
    let mut dropped_as_duplicate = 0usize;
    let mut wrongly_dropped = 0usize; // false positives: new event judged "seen"
    let mut delivered = 0usize;

    for (i, key) in dataset.keys().iter().enumerate() {
        // Original delivery.
        delivered += 1;
        if seen.contains(key) {
            wrongly_dropped += 1;
        } else {
            seen.insert(key)?;
            admitted += 1;
        }
        // Simulated at-least-once replay of an earlier event.
        if i % duplicate_every == 0 && i > 0 {
            delivered += 1;
            let replay = &dataset.keys()[i / 2];
            if seen.contains(replay) {
                dropped_as_duplicate += 1;
            } else {
                // Cannot happen: the filter has no false negatives.
                unreachable!("replayed event not found — false negative!");
            }
        }
    }

    println!("deliveries:            {delivered}");
    println!("admitted (unique):     {admitted}");
    println!("dropped (duplicate):   {dropped_as_duplicate}");
    println!("wrongly dropped (FP):  {wrongly_dropped}");
    println!(
        "false-positive rate:   {:.5}% (Equ. 10 bound at this load: {:.5}%)",
        100.0 * wrongly_dropped as f64 / unique_events as f64,
        100.0
            * vertical_cuckoo_filters::analysis::fpr_upper_bound(0.984, 4, seen.load_factor(), 14)
    );
    println!("filter load factor:    {:.1}%", seen.load_factor() * 100.0);

    // Every replayed duplicate was caught — the no-false-negative
    // guarantee in action.
    // Replays happen at i = 5, 10, …, i.e. (n − 1) / 5 of them.
    assert_eq!(dropped_as_duplicate, (unique_events - 1) / duplicate_every);
    Ok(())
}
