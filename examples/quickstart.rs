//! Quickstart: build a Vertical Cuckoo Filter, insert, query, delete.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use vertical_cuckoo_filters::traits::Filter;
use vertical_cuckoo_filters::vcf::{CuckooConfig, VerticalCuckooFilter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A filter with 2^12 buckets × 4 slots = 16384 entries, 14-bit
    // fingerprints and the paper's MAX = 500 relocation threshold.
    let config = CuckooConfig::new(1 << 12)
        .with_fingerprint_bits(14)
        .with_seed(2021);
    let mut filter = VerticalCuckooFilter::new(config)?;

    // Insert a handful of items.
    for name in ["alice", "bob", "carol", "dave"] {
        filter.insert(name.as_bytes())?;
    }
    println!(
        "stored {} items in {} slots",
        filter.len(),
        filter.capacity()
    );

    // Membership: no false negatives, tunably-rare false positives.
    assert!(filter.contains(b"alice"));
    assert!(filter.contains(b"dave"));
    println!("alice present: {}", filter.contains(b"alice"));
    println!("mallory present: {}", filter.contains(b"mallory"));

    // True deletion — the feature Bloom filters lack.
    assert!(filter.delete(b"bob"));
    assert!(!filter.contains(b"bob"));
    println!("after delete, bob present: {}", filter.contains(b"bob"));

    // Fill to capacity to see vertical hashing at work: 4 candidate
    // buckets per item keep eviction cascades rare even near 100 % load.
    for i in 0..filter.capacity() as u64 {
        let _ = filter.insert(format!("bulk-{i}").as_bytes());
    }
    let stats = filter.stats();
    println!(
        "bulk fill: load factor {:.2}%, {:.2} evictions/insert, {} failed inserts",
        filter.load_factor() * 100.0,
        stats.kicks_per_insert(),
        stats.failed_inserts,
    );
    Ok(())
}
