//! A concurrent network-flow tracker: sharded VCF for flow membership
//! plus a vertical Count-Min sketch for heavy-hitter byte counts.
//!
//! This is the shape of the "routers and storage systems" deployments the
//! paper's introduction motivates: multiple packet-processing threads
//! share one membership structure ("have we seen this flow?") and one
//! frequency sketch ("how much traffic per flow?"), both built on
//! vertical hashing.
//!
//! ```text
//! cargo run --release --example concurrent_flows
//! ```

use std::sync::{Arc, Mutex};
use std::time::Instant;
use vertical_cuckoo_filters::sketches::{CountMin, VerticalCountMin};
use vertical_cuckoo_filters::vcf::{CuckooConfig, ShardedVcf};
use vertical_cuckoo_filters::workloads::Zipf;

const THREADS: u64 = 4;
const PACKETS_PER_THREAD: usize = 200_000;
const FLOWS: usize = 20_000;

fn flow_key(flow: usize) -> Vec<u8> {
    // Synthesize something IPv4-5-tuple-shaped.
    format!(
        "10.0.{}.{}:{}->203.0.113.7:443",
        flow / 256,
        flow % 256,
        1024 + flow % 40000
    )
    .into_bytes()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let membership = Arc::new(ShardedVcf::new(
        CuckooConfig::with_total_slots(FLOWS * 2).with_seed(1),
        3,
    )?);
    // The sketch is single-writer-per-lock here for simplicity; a real
    // pipeline would shard it the same way as the filter.
    let traffic = Arc::new(Mutex::new(VerticalCountMin::new(1 << 14, 4, 2)?));

    let start = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let membership = Arc::clone(&membership);
            let traffic = Arc::clone(&traffic);
            std::thread::spawn(move || {
                // Each thread sees a Zipf-skewed packet stream.
                let mut zipf = Zipf::new(FLOWS, 1.1, 100 + t).expect("valid zipf");
                let mut new_flows = 0u64;
                for _ in 0..PACKETS_PER_THREAD {
                    let flow = zipf.sample();
                    let key = flow_key(flow);
                    if !membership.contains(&key) {
                        // First packet of a (locally) unseen flow.
                        if membership.insert(&key).is_ok() {
                            new_flows += 1;
                        }
                    }
                    traffic.lock().expect("sketch lock").increment(&key, 1);
                }
                new_flows
            })
        })
        .collect();

    let mut discovered = 0u64;
    for worker in workers {
        discovered += worker.join().expect("worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let packets = THREADS as usize * PACKETS_PER_THREAD;

    println!("processed {packets} packets on {THREADS} threads in {elapsed:.2}s");
    println!(
        "  throughput:        {:.1} Mpkt/s",
        packets as f64 / elapsed / 1e6
    );
    println!("  flows discovered:  {discovered} (unique flows touched <= {FLOWS})");
    println!(
        "  filter load:       {:.1}%",
        membership.load_factor() * 100.0
    );
    println!("  filter kicks:      {}", membership.stats().kicks);

    // Heavy hitters: rank 0 of the Zipf stream must dominate the sketch.
    let sketch = traffic.lock().expect("sketch lock");
    let hot = sketch.estimate(&flow_key(0));
    let cold = sketch.estimate(&flow_key(FLOWS - 1));
    println!("  hottest flow est.: {hot} packets; coldest: {cold}");
    assert!(
        hot > cold * 10,
        "Zipf head must dominate: hot={hot} cold={cold}"
    );

    // Every discovered flow must still test positive.
    assert!(membership.contains(&flow_key(0)));
    println!("\nshared-nothing shards + one-hash sketch indexing: vertical hashing end to end.");
    Ok(())
}
