//! Tuning the `r` knob: load factor vs false positive rate across the
//! IVCF and DVCF ladders (the paper's Section IV trade-off).
//!
//! IVCF moves `r` in discrete steps by reshaping the bitmask; DVCF moves
//! it continuously with the fingerprint threshold `Δt`. This example
//! sweeps both and prints the achieved (load factor, FPR) pairs so you
//! can pick an operating point for your application.
//!
//! ```text
//! cargo run --release --example tuning_tradeoff
//! ```

use vertical_cuckoo_filters::analysis;
use vertical_cuckoo_filters::traits::Filter;
use vertical_cuckoo_filters::vcf::{CuckooConfig, Dvcf, VerticalCuckooFilter};
use vertical_cuckoo_filters::workloads::KeyStream;

fn evaluate(filter: &mut dyn Filter, slots: usize) -> (f64, f64) {
    let keys = KeyStream::new(11).take_vec(slots);
    let mut stored = 0usize;
    for key in &keys {
        if filter.insert(key).is_ok() {
            stored += 1;
        }
    }
    let aliens = KeyStream::new(0xa11e4).take_vec(200_000);
    let false_positives = aliens.iter().filter(|k| filter.contains(k)).count();
    (
        stored as f64 / filter.capacity() as f64,
        false_positives as f64 / aliens.len() as f64,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let slots = 1usize << 16;
    let config = CuckooConfig::with_total_slots(slots).with_seed(3);

    println!(
        "{:>8}  {:>7}  {:>7}  {:>11}  {:>13}",
        "filter", "r", "LF(%)", "FPR(x1e-3)", "bound(x1e-3)"
    );

    // IVCF ladder: discrete r via bitmask shape (Equ. 8).
    for ones in 1..=7u32 {
        let mut filter = VerticalCuckooFilter::with_mask_ones(config, ones)?;
        let r = filter.expected_r();
        let (lf, fpr) = evaluate(&mut filter, slots);
        println!(
            "{:>8}  {:>7.4}  {:>7.2}  {:>11.3}  {:>13.3}",
            filter.name(),
            r,
            lf * 100.0,
            fpr * 1e3,
            analysis::fpr_upper_bound(r, 4, lf, 14) * 1e3
        );
    }

    println!();

    // DVCF ladder: continuous r via the Δt threshold (Equ. 9).
    for j in 1..=8u32 {
        let r = f64::from(j) / 8.0;
        let mut filter = Dvcf::with_r(config, r)?;
        let (lf, fpr) = evaluate(&mut filter, slots);
        println!(
            "{:>8}  {:>7.4}  {:>7.2}  {:>11.3}  {:>13.3}",
            format!("DVCF{j}"),
            r,
            lf * 100.0,
            fpr * 1e3,
            analysis::fpr_upper_bound(r, 4, lf, 14) * 1e3
        );
    }

    println!("\nRead a row as: spending r (more candidate buckets per item) buys load");
    println!("factor and costs false positives; Equ. 10 bounds the cost in advance.");
    Ok(())
}
