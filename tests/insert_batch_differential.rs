//! Differential properties for the insert-side pipeline.
//!
//! Two families of checks, each across the whole filter family:
//!
//! 1. **Batch ≡ serial.** [`Filter::insert_batch`] prefetches and
//!    pipelines, but it must be *observably identical* to calling
//!    [`Filter::insert`] in a loop: same per-item results, same final
//!    occupancy, same kick totals, and identical membership. The batched
//!    overrides consume the eviction RNG in item order, so this holds
//!    bit-for-bit, not just statistically.
//! 2. **BFS ≡ random walk on membership.** Switching
//!    [`EvictionPolicy::Bfs`] changes *where* fingerprints land and how
//!    many relocations that takes, but never loses an acknowledged item;
//!    and because BFS finds shortest relocation paths (and aborts failed
//!    inserts before writing), its total kick count never exceeds the
//!    random walk's on the same key sequence.
//! 3. **Bulk build ≡ serial on membership.** The sort-by-bucket
//!    [`Filter::build_from_iter`] places items in a different physical
//!    order, so tables are *not* bit-identical — but every acknowledged
//!    item must be a member, the occupancy must equal the `Ok` count,
//!    and batched lookups must agree with serial lookups afterwards.

use proptest::prelude::*;
use vertical_cuckoo_filters::baselines::CuckooFilter;
use vertical_cuckoo_filters::traits::Filter;
use vertical_cuckoo_filters::vcf::{
    CuckooConfig, Dvcf, EvictionPolicy, KVcf, VerticalCuckooFilter,
};

fn config() -> CuckooConfig {
    CuckooConfig::new(1 << 6).with_seed(0xbead)
}

fn key_bytes(k: u32) -> [u8; 4] {
    k.to_le_bytes()
}

/// Inserts `keys` serially into one instance and batched into another,
/// then checks the two filters are observationally identical.
fn check_batch_matches_serial(
    mut serial: Box<dyn Filter>,
    mut batched: Box<dyn Filter>,
    keys: &[u32],
) -> Result<(), TestCaseError> {
    let name = serial.name();
    let bytes: Vec<[u8; 4]> = keys.iter().copied().map(key_bytes).collect();
    let refs: Vec<&[u8]> = bytes.iter().map(<[u8; 4]>::as_slice).collect();

    let serial_results: Vec<_> = refs.iter().map(|k| serial.insert(k)).collect();
    let batch_results = batched.insert_batch(&refs);

    prop_assert_eq!(
        &serial_results,
        &batch_results,
        "{}: per-item results diverge",
        name
    );
    prop_assert_eq!(serial.len(), batched.len(), "{}: occupancy diverges", name);
    prop_assert_eq!(
        serial.stats().kicks,
        batched.stats().kicks,
        "{}: kick totals diverge",
        name
    );
    for (key, result) in keys.iter().zip(&serial_results) {
        if result.is_ok() {
            prop_assert!(
                serial.contains(&key_bytes(*key)),
                "{}: serial lost {}",
                name,
                key
            );
            prop_assert!(
                batched.contains(&key_bytes(*key)),
                "{}: batched lost {}",
                name,
                key
            );
        }
    }
    Ok(())
}

/// Fills a random-walk and a BFS instance with the same keys; every
/// acknowledged key must remain a member of its own filter (zero false
/// negatives), and BFS must not out-kick the random walk.
fn check_bfs_vs_random_walk(
    mut random_walk: Box<dyn Filter>,
    mut bfs: Box<dyn Filter>,
    keys: &[u32],
) -> Result<(), TestCaseError> {
    let name = random_walk.name();
    for (filter, policy) in [(&mut random_walk, "random-walk"), (&mut bfs, "bfs")] {
        let mut acknowledged = Vec::new();
        for key in keys {
            if filter.insert(&key_bytes(*key)).is_ok() {
                acknowledged.push(*key);
            }
        }
        for key in &acknowledged {
            prop_assert!(
                filter.contains(&key_bytes(*key)),
                "{} ({}): acknowledged key {} lost",
                name,
                policy,
                key
            );
        }
    }
    prop_assert!(
        bfs.stats().kicks <= random_walk.stats().kicks,
        "{}: BFS kicked {} times, random walk only {}",
        name,
        bfs.stats().kicks,
        random_walk.stats().kicks
    );
    Ok(())
}

/// Fills one instance serially and one with the sort-by-bucket bulk
/// build; the bulk filter must keep every item it acknowledged, match
/// its own `Ok` count in occupancy, and answer batched lookups the same
/// way as per-item lookups.
fn check_bulk_build_membership(
    mut serial: Box<dyn Filter>,
    mut bulk: Box<dyn Filter>,
    keys: &[u32],
) -> Result<(), TestCaseError> {
    let name = serial.name();
    let bytes: Vec<[u8; 4]> = keys.iter().copied().map(key_bytes).collect();
    let refs: Vec<&[u8]> = bytes.iter().map(<[u8; 4]>::as_slice).collect();

    let serial_results: Vec<_> = refs.iter().map(|k| serial.insert(k)).collect();
    let bulk_results = bulk.build_from_iter(&mut refs.iter().copied());

    prop_assert_eq!(
        bulk_results.len(),
        refs.len(),
        "{}: one result per item",
        name
    );
    let bulk_ok = bulk_results.iter().filter(|r| r.is_ok()).count();
    prop_assert_eq!(
        bulk.len(),
        bulk_ok,
        "{}: bulk occupancy must equal its Ok count",
        name
    );
    for (key, result) in keys.iter().zip(&bulk_results) {
        if result.is_ok() {
            prop_assert!(
                bulk.contains(&key_bytes(*key)),
                "{}: bulk build lost acknowledged key {}",
                name,
                key
            );
        }
    }
    // When serial stored everything, bulk must too (first-fit sweeps
    // only ever find *more* room than the serial arrival order did
    // before the cleanup pass runs with full eviction power) — checked
    // statistically: same total occupancy implies identical membership
    // on Ok items, which the loop above already pinned.
    let serial_ok = serial_results.iter().filter(|r| r.is_ok()).count();
    if serial_ok == keys.len() {
        prop_assert_eq!(
            bulk_ok,
            serial_ok,
            "{}: bulk rejected items a serial fill accepted at low load",
            name
        );
    }
    // Batched lookups (the SIMD gather path) agree with per-item ones.
    let batched = bulk.contains_batch(&refs);
    for (i, k) in refs.iter().enumerate() {
        prop_assert_eq!(
            batched[i],
            bulk.contains(k),
            "{}: contains_batch diverges from contains",
            name
        );
    }
    Ok(())
}

type MakeFilter = fn(CuckooConfig) -> Box<dyn Filter>;

fn family() -> Vec<(&'static str, MakeFilter)> {
    vec![
        ("CF", |c| Box::new(CuckooFilter::new(c).unwrap())),
        ("VCF", |c| Box::new(VerticalCuckooFilter::new(c).unwrap())),
        ("DVCF", |c| Box::new(Dvcf::with_r(c, 0.5).unwrap())),
        ("KVCF", |c| {
            Box::new(KVcf::new(c.with_fingerprint_bits(16), 6).unwrap())
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch ≡ serial for every filter in the family, on duplicate-heavy
    /// key streams long enough to trigger evictions (table holds 256).
    #[test]
    fn insert_batch_is_serial_insert(keys in prop::collection::vec(0u32..500, 1..320)) {
        for (_, make) in family() {
            check_batch_matches_serial(make(config()), make(config()), &keys)?;
        }
    }

    /// BFS and random walk acknowledge-then-keep the same way, and BFS
    /// never relocates more than the walk on the same stream.
    #[test]
    fn bfs_membership_matches_random_walk(keys in prop::collection::vec(0u32..500, 1..320)) {
        for (_, make) in family() {
            check_bfs_vs_random_walk(
                make(config()),
                make(config().with_eviction_policy(EvictionPolicy::Bfs)),
                &keys,
            )?;
        }
    }

    /// Sort-by-bucket bulk build is membership-equivalent to serial
    /// insertion for every filter in the family.
    #[test]
    fn bulk_build_membership_matches_serial(keys in prop::collection::vec(0u32..500, 1..320)) {
        for (_, make) in family() {
            check_bulk_build_membership(make(config()), make(config()), &keys)?;
        }
    }
}
