//! Differential oracle for the elastic `ScalableVcf`: replay a long
//! mixed insert/delete/lookup stream against a `HashSet` ground truth,
//! forcing growth, explicit migration steps and shrink-to-fit mid-stream.
//!
//! Invariants checked throughout:
//!
//! * **Zero false negatives** — every live key answers `true`, on every
//!   lookup and in periodic full-membership sweeps.
//! * **Exact occupancy** — `len()` equals the oracle's size after every
//!   operation and after every migration step (migration moves
//!   fingerprints, never duplicates or drops them).
//! * **Bounded per-op migration work** — no insert drains more than one
//!   cold bucket-range (`migration_stats().last_op_buckets <= 1`).
//!
//! The filter runs at `fingerprint_bits = 32`, which makes a cross-key
//! fingerprint-plus-coset collision (~2e-5 per pair per bucket) rare
//! enough that exact-occupancy accounting through 1M ops is sound.

use std::collections::HashMap;

use vertical_cuckoo_filters::traits::{Filter, ScalableFilter};
use vertical_cuckoo_filters::vcf::{CuckooConfig, ScalableVcf};

/// SplitMix64: deterministic op stream without external dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn key(i: u64) -> Vec<u8> {
    format!("oracle-{i}").into_bytes()
}

/// Live-set oracle supporting O(1) insert, remove and uniform sampling.
#[derive(Default)]
struct Oracle {
    live: Vec<u64>,
    pos: HashMap<u64, usize>,
}

impl Oracle {
    fn insert(&mut self, k: u64) -> bool {
        if self.pos.contains_key(&k) {
            return false;
        }
        self.pos.insert(k, self.live.len());
        self.live.push(k);
        true
    }

    fn remove_at(&mut self, index: usize) -> u64 {
        let k = self.live.swap_remove(index);
        self.pos.remove(&k);
        if index < self.live.len() {
            self.pos.insert(self.live[index], index);
        }
        k
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

fn assert_exact_occupancy(filter: &ScalableVcf, oracle: &Oracle, context: &str) {
    assert_eq!(
        filter.len(),
        oracle.len(),
        "{context}: filter occupancy diverged from oracle"
    );
}

fn full_sweep(filter: &ScalableVcf, oracle: &Oracle, context: &str) {
    for &k in &oracle.live {
        assert!(
            filter.contains(&key(k)),
            "{context}: false negative for live key {k}"
        );
    }
}

/// The headline satellite: 1M mixed ops with growth, explicit migration
/// and shrink forced mid-stream.
#[test]
fn scalable_vcf_matches_hashset_through_one_million_ops() {
    let config = CuckooConfig::new(1 << 6)
        .with_fingerprint_bits(32)
        .with_seed(0xac7e);
    let mut filter = ScalableVcf::new(config).unwrap();
    let mut oracle = Oracle::default();
    let mut rng = Rng(0x5ca1_ab1e);
    let mut next_key = 0u64;
    let mut negative_lookups = 0u64;
    let mut false_positives = 0u64;

    const TOTAL_OPS: usize = 1_000_000;
    for op in 0..TOTAL_OPS {
        // Phase mix: grow-heavy, then delete-heavy (sets up shrink), then
        // balanced churn.
        let (insert_w, delete_w) = match op {
            0..=399_999 => (60, 10),
            400_000..=599_999 => (10, 60),
            _ => (40, 40),
        };
        let roll = rng.below(100);
        if roll < insert_w {
            let k = next_key;
            next_key += 1;
            assert!(oracle.insert(k));
            filter
                .insert(&key(k))
                .unwrap_or_else(|e| panic!("op {op}: insert failed: {e}"));
            assert!(
                filter.migration_stats().last_op_buckets <= 1,
                "op {op}: insert drained more than one bucket-range"
            );
        } else if roll < insert_w + delete_w {
            if oracle.len() == 0 {
                continue;
            }
            let index = rng.below(oracle.len() as u64) as usize;
            let k = oracle.remove_at(index);
            assert!(filter.delete(&key(k)), "op {op}: delete of live key {k}");
        } else if oracle.len() > 0 && rng.below(2) == 0 {
            let index = rng.below(oracle.len() as u64) as usize;
            let k = oracle.live[index];
            assert!(filter.contains(&key(k)), "op {op}: false negative for {k}");
        } else {
            // Never-inserted key: false positives allowed, bounded below.
            let k = u64::MAX - rng.below(1 << 40);
            negative_lookups += 1;
            if filter.contains(&key(k)) {
                false_positives += 1;
            }
        }
        assert_exact_occupancy(&filter, &oracle, &format!("op {op}"));

        // Interleave explicit migration steps and check exact occupancy
        // after every one.
        if op % 97 == 0 && filter.migration_backlog() > 0 {
            filter.migrate_step(2);
            assert_exact_occupancy(&filter, &oracle, &format!("op {op} migrate_step"));
        }
        // Periodic full no-false-negative sweeps.
        if op % 100_000 == 99_999 {
            full_sweep(&filter, &oracle, &format!("op {op} sweep"));
        }
        // Force shrink right after the delete-heavy phase and again near
        // the end, mid-churn.
        if op == 600_000 || op == 900_000 {
            let before = filter.capacity();
            let shrunk = filter.shrink_to_fit();
            assert_exact_occupancy(&filter, &oracle, &format!("op {op} shrink"));
            full_sweep(&filter, &oracle, &format!("op {op} shrink sweep"));
            if shrunk {
                assert!(filter.capacity() < before, "shrink reported but no change");
                assert_eq!(filter.segments(), 1, "shrink must flatten the chain");
            }
        }
    }

    assert!(
        filter.capacity() > 256,
        "the stream must have forced growth beyond the base segment"
    );
    full_sweep(&filter, &oracle, "final");
    // f = 32: a false positive needs a 32-bit fingerprint match inside a
    // candidate bucket — a handful in 300k negative lookups would already
    // be suspicious.
    assert!(
        false_positives * 1000 < negative_lookups.max(1),
        "FPR too high at f=32: {false_positives}/{negative_lookups}"
    );
}

/// Drain the whole backlog through `migrate_step`, checking exact
/// occupancy and zero false negatives after **every** step.
#[test]
fn every_migration_step_preserves_membership_and_occupancy() {
    let config = CuckooConfig::new(1 << 6)
        .with_fingerprint_bits(32)
        .with_seed(42);
    let mut filter = ScalableVcf::new(config).unwrap();
    filter.set_migrate_budget(0); // all migration happens explicitly below
    let mut oracle = Oracle::default();
    for k in 0..3_000u64 {
        oracle.insert(k);
        filter.insert(&key(k)).unwrap();
    }
    assert!(filter.segments() > 1);

    let mut guard = 0;
    while filter.migration_backlog() > 0 {
        if filter.migrate_step(4) == 0 && filter.migration_backlog() > 0 {
            // Stalled on a saturated partition: grow to unblock, per the
            // ScalableFilter contract.
            filter.grow().unwrap();
        }
        assert_exact_occupancy(&filter, &oracle, "migrate_step");
        full_sweep(&filter, &oracle, "migrate_step");
        guard += 1;
        assert!(guard < 100_000, "migration never converged");
    }
    assert_eq!(filter.segments(), 1);
}

/// Sustained-insert growth sweep. The default variant covers 2^12 → 2^16
/// slots so it stays fast in debug; the `--ignored` variant runs the full
/// acceptance-criteria range 2^12 → 2^22 in release mode.
fn growth_sweep(target_slots: usize) {
    let config = CuckooConfig::new(1 << 10).with_seed(7); // 2^12 slots
    let mut filter = ScalableVcf::new(config).unwrap();
    assert_eq!(filter.capacity(), 1 << 12);
    let mut inserted = 0u64;
    while filter.capacity() < target_slots {
        filter
            .insert(&key(inserted))
            .unwrap_or_else(|e| panic!("insert {inserted} failed while growing: {e}"));
        assert!(
            filter.migration_stats().last_op_buckets <= 1,
            "insert {inserted} exceeded the one-bucket-range migration budget"
        );
        inserted += 1;
    }
    assert!(filter.capacity() >= target_slots);
    // Spot-check then fully sweep: zero false negatives throughout.
    for k in 0..inserted {
        assert!(filter.contains(&key(k)), "key {k} lost during growth");
    }
    assert_eq!(filter.len(), inserted as usize);
}

#[test]
fn grows_2_12_to_2_16_slots_with_bounded_op_work() {
    growth_sweep(1 << 16);
}

#[test]
#[ignore = "multi-minute growth sweep to 2^22 slots; run with --ignored --release"]
fn grows_2_12_to_2_22_slots_with_bounded_op_work() {
    growth_sweep(1 << 22);
}
