//! Differential oracle for the hot/cold tiered lifecycle.
//!
//! A `TieredVcf` runs a churn workload with rotations interleaved at
//! arbitrary points while an exact `HashSet` oracle tracks which keys
//! have been acknowledged. The contract mirrors what PR 7 proved for
//! `migrate_step`, extended across the freeze boundary:
//!
//! * **Zero false negatives at every intermediate step**: every key the
//!   filter acknowledged (inserted, not successfully deleted) is found
//!   before, during and after each rotation.
//! * **Bounded work per call**: an insert advances an in-flight
//!   rotation by at most `rotate_budget` units; `rotate_step(n)` by at
//!   most `n`.
//! * **Exact hot-tier accounting**: `hashes = 2·inserts + kicks` holds
//!   on the hot tier regardless of rotation work.

use std::collections::HashSet;
use vertical_cuckoo_filters::prelude::*;

fn key(tag: &str, i: u64) -> Vec<u8> {
    format!("{tag}-{i}").into_bytes()
}

/// Asserts every oracle key is present — the no-false-negative half of
/// the contract, checked at every lifecycle point.
fn assert_no_false_negatives(filter: &TieredVcf, oracle: &HashSet<Vec<u8>>, when: &str) {
    for k in oracle {
        assert!(
            filter.contains(k),
            "false negative {when}: {:?} acknowledged but not found",
            String::from_utf8_lossy(k)
        );
    }
}

#[test]
fn rotation_never_loses_acknowledged_keys() {
    let mut filter = TieredVcf::new(CuckooConfig::new(1 << 8).with_seed(0xfeed)).unwrap();
    let mut oracle: HashSet<Vec<u8>> = HashSet::new();

    for round in 0..4u64 {
        // Churn: inserts with a sprinkling of deletes.
        for i in 0..400 {
            let k = key("live", round * 10_000 + i);
            filter.insert(&k).unwrap();
            oracle.insert(k);
        }
        for i in (0..400).step_by(7) {
            let k = key("live", round * 10_000 + i);
            if filter.delete(&k) {
                oracle.remove(&k);
            }
        }
        assert_no_false_negatives(&filter, &oracle, "before rotation");

        assert!(filter.rotate(), "round {round}: rotation should start");
        let mut steps = 0;
        while filter.rotation_backlog() > 0 {
            let did = filter.rotate_step(5);
            assert!(did <= 5, "rotate_step(5) performed {did} units");
            assert!(
                filter.rotation_stats().last_op_units <= 5,
                "last_op_units exceeds the requested budget"
            );
            // The full oracle is found at *every* intermediate step.
            if steps % 9 == 0 {
                assert_no_false_negatives(&filter, &oracle, "mid-rotation");
            }
            steps += 1;
            assert!(steps < 1_000_000, "rotation never converged");
        }
        assert_eq!(filter.generations() as u64, round + 1);
        assert_no_false_negatives(&filter, &oracle, "after rotation");
    }

    // Frozen keys are append-frozen: deleting them misses without
    // breaking membership.
    let frozen_key = key("live", 1);
    assert!(!filter.delete(&frozen_key));
    assert!(filter.contains(&frozen_key));
}

#[test]
fn inserts_amortize_rotation_within_budget() {
    let mut filter = TieredVcf::new(CuckooConfig::new(1 << 8).with_seed(7)).unwrap();
    filter.set_rotate_budget(2);
    let mut oracle: HashSet<Vec<u8>> = HashSet::new();

    for i in 0..600 {
        let k = key("seed", i);
        filter.insert(&k).unwrap();
        oracle.insert(k);
    }
    assert!(filter.rotate());

    // Keep inserting while the rotation drains in the background; each
    // insert performs at most the configured budget of rotation work.
    let mut i = 0;
    while filter.rotation_backlog() > 0 {
        let k = key("during", i);
        filter.insert(&k).unwrap();
        oracle.insert(k);
        assert!(
            filter.rotation_stats().last_op_units <= 2,
            "insert advanced rotation beyond its budget"
        );
        i += 1;
        assert!(i < 1_000_000, "amortized rotation never converged");
    }
    assert_eq!(filter.generations(), 1);
    assert_no_false_negatives(&filter, &oracle, "after amortized rotation");

    // The keys inserted mid-rotation landed in the fresh hot tier.
    assert!(filter.hot().len() > 0);
}

#[test]
fn hot_tier_hash_accounting_stays_exact_through_rotations() {
    let mut filter = TieredVcf::new(CuckooConfig::new(1 << 8).with_seed(3)).unwrap();
    for i in 0..300 {
        filter.insert(&key("a", i)).unwrap();
    }
    assert!(filter.rotate());
    // The rotation swapped in a fresh hot tier; measure from here so the
    // identity covers inserts that interleave with rotation work.
    filter.reset_stats();
    let mut i = 0;
    while filter.rotation_backlog() > 0 {
        filter.insert(&key("b", i)).unwrap();
        filter.rotate_step(3);
        i += 1;
        assert!(i < 1_000_000);
    }
    for j in 0..200 {
        filter.insert(&key("c", j)).unwrap();
    }
    let stats = filter.stats();
    assert_eq!(
        stats.hash_computations,
        2 * stats.inserts.calls + stats.kicks,
        "rotation work leaked into hot-tier hash accounting: {stats:?}"
    );
}

#[test]
fn batched_lookups_agree_with_serial_across_tiers() {
    let mut filter = TieredVcf::new(CuckooConfig::new(1 << 8).with_seed(11)).unwrap();
    for round in 0..3u64 {
        for i in 0..250 {
            filter.insert(&key("gen", round * 1000 + i)).unwrap();
        }
        assert!(filter.rotate());
        while filter.rotation_backlog() > 0 {
            filter.rotate_step(16);
        }
    }
    for i in 0..100 {
        filter.insert(&key("hot", i)).unwrap();
    }

    let queries: Vec<Vec<u8>> = (0..3000u64)
        .map(|i| {
            if i % 3 == 0 {
                key("gen", i % 2250)
            } else if i % 3 == 1 {
                key("hot", i % 150)
            } else {
                key("absent", i)
            }
        })
        .collect();
    let refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
    let batched = filter.contains_batch(&refs);
    for (i, q) in refs.iter().enumerate() {
        assert_eq!(
            batched[i],
            filter.contains(q),
            "batched lookup diverged from serial at probe {i}"
        );
    }
}

#[test]
fn snapshot_round_trips_a_frozen_generation() {
    // Freeze a generation, snapshot it through the FUZ1 record, and
    // check the restored fuse answers identically on live keys.
    let mut filter = TieredVcf::new(CuckooConfig::new(1 << 8).with_seed(5)).unwrap();
    let keys: Vec<Vec<u8>> = (0..500).map(|i| key("snap", i)).collect();
    for k in &keys {
        filter.insert(k).unwrap();
    }
    let canonical: Vec<u64> = keys.iter().map(|k| filter.hot().canonical_key(k)).collect();
    assert!(filter.rotate());
    while filter.rotation_backlog() > 0 {
        filter.rotate_step(64);
    }

    let fuse = BinaryFuse8::from_keys(&canonical, 99).unwrap();
    let restored = BinaryFuse8::from_snapshot(&fuse.to_snapshot()).unwrap();
    for (&k, original) in canonical.iter().zip(keys.iter()) {
        assert!(
            restored.contains_key(k),
            "restored fuse lost {:?}",
            String::from_utf8_lossy(original)
        );
        assert_eq!(restored.contains_key(k), fuse.contains_key(k));
    }
}
