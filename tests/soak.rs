//! Long-running soak tests. The default-run variants are sized for CI;
//! the `#[ignore]`d variants run millions of operations
//! (`cargo test --release -- --ignored`).

use vertical_cuckoo_filters::baselines::CuckooFilter;
use vertical_cuckoo_filters::hash::SplitMix64;
use vertical_cuckoo_filters::traits::Filter;
use vertical_cuckoo_filters::vcf::{CuckooConfig, VerticalCuckooFilter};

/// Random-churn soak: keeps a filter at ~85 % occupancy while inserting,
/// deleting and querying random members of a bounded key universe,
/// verifying the no-false-negative invariant continuously against a
/// multiset oracle.
fn soak(filter: &mut dyn Filter, ops: u64, seed: u64) {
    let name = filter.name();
    let capacity = filter.capacity();
    let target = capacity * 85 / 100;
    let universe = capacity as u64 * 4;
    let mut oracle: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut live: Vec<u64> = Vec::new();
    let mut rng = SplitMix64::new(seed);
    let key = |id: u64| format!("soak-{id}").into_bytes();

    for step in 0..ops {
        let fill = filter.len();
        let want_insert = fill < target || (rng.next_below(4) != 0 && fill < capacity);
        if want_insert {
            let id = rng.next_below(universe);
            if filter.insert(&key(id)).is_ok() {
                *oracle.entry(id).or_insert(0) += 1;
                live.push(id);
            }
        } else if !live.is_empty() {
            let at = rng.next_below(live.len() as u64) as usize;
            let id = live.swap_remove(at);
            assert!(
                filter.delete(&key(id)),
                "{name}: step {step}: lost live id {id}"
            );
            let count = oracle.get_mut(&id).expect("oracle holds live ids");
            *count -= 1;
            if *count == 0 {
                oracle.remove(&id);
            }
        }
        // Spot-check a live item every few steps.
        if step % 7 == 0 && !live.is_empty() {
            let id = live[rng.next_below(live.len() as u64) as usize];
            assert!(
                filter.contains(&key(id)),
                "{name}: step {step}: false negative for live id {id}"
            );
        }
    }
    // Full sweep at the end.
    for (&id, &count) in &oracle {
        if count > 0 {
            assert!(
                filter.contains(&key(id)),
                "{name}: final sweep lost id {id}"
            );
        }
    }
    assert_eq!(
        filter.len(),
        oracle.values().map(|&c| c as usize).sum::<usize>()
    );
}

#[test]
fn soak_vcf_short() {
    let mut f =
        VerticalCuckooFilter::new(CuckooConfig::with_total_slots(1 << 12).with_seed(1)).unwrap();
    soak(&mut f, 60_000, 11);
}

#[test]
fn soak_cf_short() {
    let mut f = CuckooFilter::new(CuckooConfig::with_total_slots(1 << 12).with_seed(2)).unwrap();
    soak(&mut f, 60_000, 12);
}

#[test]
#[ignore = "multi-minute soak; run with --ignored --release"]
fn soak_vcf_long() {
    let mut f =
        VerticalCuckooFilter::new(CuckooConfig::with_total_slots(1 << 16).with_seed(3)).unwrap();
    soak(&mut f, 5_000_000, 13);
}

#[test]
#[ignore = "multi-minute soak; run with --ignored --release"]
fn soak_cf_long() {
    let mut f = CuckooFilter::new(CuckooConfig::with_total_slots(1 << 16).with_seed(4)).unwrap();
    soak(&mut f, 5_000_000, 14);
}
