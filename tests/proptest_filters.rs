//! Property-based end-to-end tests: arbitrary operation sequences against
//! a multiset oracle, for each filter family member.
//!
//! These complement the deterministic contract tests by letting proptest
//! hunt for adversarial interleavings (duplicate-heavy streams, deletes of
//! absent keys, re-inserts after deletes).

use proptest::prelude::*;
use std::collections::HashMap;
use vertical_cuckoo_filters::baselines::{CuckooFilter, DaryCuckooFilter, QuotientFilter};
use vertical_cuckoo_filters::traits::Filter;
use vertical_cuckoo_filters::vcf::{CuckooConfig, Dvcf, DynamicVcf, KVcf, VerticalCuckooFilter};

#[derive(Debug, Clone)]
enum FilterOp {
    Insert(u16),
    Delete(u16),
    Query(u16),
}

fn op_strategy() -> impl Strategy<Value = FilterOp> {
    prop_oneof![
        (0u16..400).prop_map(FilterOp::Insert),
        (0u16..400).prop_map(FilterOp::Delete),
        (0u16..400).prop_map(FilterOp::Query),
    ]
}

/// Drives `filter` through `ops`, checking against a multiset oracle:
/// * a key the oracle holds must always be reported present;
/// * `delete` must succeed exactly when the oracle holds at least one copy
///   *or* the filter has a (legal) colliding fingerprint — so we only
///   assert the one-directional guarantees that AMQ semantics give.
fn check_against_oracle(mut filter: Box<dyn Filter>, ops: &[FilterOp]) {
    let name = filter.name();
    let mut oracle: HashMap<u16, usize> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            FilterOp::Insert(k) => {
                if filter.insert(&k.to_le_bytes()).is_ok() {
                    *oracle.entry(*k).or_insert(0) += 1;
                }
            }
            FilterOp::Delete(k) => {
                // Cuckoo-family deletion is only safe for items that were
                // actually inserted (paper Section III-B); deleting an
                // absent key may legally strip a colliding fingerprint
                // from another item. The oracle therefore only issues
                // deletes for keys it holds.
                let held = oracle.get(k).copied().unwrap_or(0);
                if held > 0 {
                    let deleted = filter.delete(&k.to_le_bytes());
                    assert!(deleted, "{name}: op {i}: failed to delete stored key {k}");
                    *oracle.get_mut(k).unwrap() -= 1;
                }
            }
            FilterOp::Query(k) => {
                let held = oracle.get(k).copied().unwrap_or(0);
                if held > 0 {
                    assert!(
                        filter.contains(&k.to_le_bytes()),
                        "{name}: op {i}: false negative for {k}"
                    );
                }
            }
        }
    }
    // Final sweep: everything the oracle still holds must be present.
    for (k, &count) in &oracle {
        if count > 0 {
            assert!(
                filter.contains(&k.to_le_bytes()),
                "{name}: key {k} lost by the end of the sequence"
            );
        }
    }
}

fn config() -> CuckooConfig {
    CuckooConfig::new(1 << 8).with_seed(1234)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vcf_respects_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_against_oracle(Box::new(VerticalCuckooFilter::new(config()).unwrap()), &ops);
    }

    #[test]
    fn ivcf_respects_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_against_oracle(
            Box::new(VerticalCuckooFilter::with_mask_ones(config(), 2).unwrap()),
            &ops,
        );
    }

    #[test]
    fn dvcf_respects_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_against_oracle(Box::new(Dvcf::with_r(config(), 0.5).unwrap()), &ops);
    }

    #[test]
    fn kvcf_respects_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_against_oracle(
            Box::new(KVcf::new(config().with_fingerprint_bits(16), 6).unwrap()),
            &ops,
        );
    }

    #[test]
    fn cf_respects_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_against_oracle(Box::new(CuckooFilter::new(config()).unwrap()), &ops);
    }

    #[test]
    fn dcf_respects_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_against_oracle(Box::new(DaryCuckooFilter::new(config(), 4).unwrap()), &ops);
    }

    #[test]
    fn quotient_respects_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_against_oracle(Box::new(QuotientFilter::new(10, 12).unwrap()), &ops);
    }

    #[test]
    fn dynamic_vcf_respects_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_against_oracle(
            Box::new(DynamicVcf::new(CuckooConfig::new(1 << 5).with_seed(7)).unwrap()),
            &ops,
        );
    }
}
