//! Property tests for the concurrent VCF path.
//!
//! Two families:
//!
//! 1. **Theorem 1 closure on the atomic path.** `ConcurrentVcf` derives
//!    candidate buckets through the same [`VerticalParams`] machinery as
//!    the sequential filter, but its *relocation* consumes them through
//!    `alternates()` while racing other threads — so the properties pin
//!    down, for random masks with `bm2 = !bm1` and random fingerprints,
//!    that (a) both filters compute identical parameters and candidate
//!    sets, and (b) the 4-bucket set is closed: from any member bucket,
//!    `{bucket} ∪ alternates(bucket)` reproduces exactly the same set.
//!    Closure is what lets a relocation hop stay inside the candidate
//!    coset, which in turn is what makes the candidate-locked delete
//!    exact.
//!
//! 2. **Single-threaded differential.** With one thread, `ConcurrentVcf`
//!    must behave like any other AMQ filter: a random op soup checked
//!    against a `HashMap` multiset oracle — no false negatives, exact
//!    occupancy, multiset delete semantics — including on tiny tables
//!    where every insert goes through the relocation path.

use proptest::prelude::*;
use std::collections::HashMap;
use std::collections::HashSet;
use vertical_cuckoo_filters::vcf::{ConcurrentVcf, CuckooConfig, MaskPair, VerticalCuckooFilter};

proptest! {
    /// The concurrent and sequential filters, built from the same config
    /// and masks, derive bit-identical vertical parameters and candidate
    /// sets for every fingerprint.
    #[test]
    fn atomic_path_candidates_match_sequential(
        bm1_bits in 1u64..(1 << 14) - 1,
        bucket_bits in 4u32..=10,
        fingerprint in 1u32..(1 << 14),
    ) {
        let masks = MaskPair::from_bm1(bm1_bits, 14).unwrap();
        let config = CuckooConfig::new(1 << bucket_bits).with_seed(7);
        let concurrent =
            ConcurrentVcf::with_masks(config, masks, "c".into()).unwrap();
        let sequential =
            VerticalCuckooFilter::with_masks(config, masks, "s".into()).unwrap();
        prop_assert_eq!(concurrent.params(), sequential.params());
        prop_assert_eq!(concurrent.masks(), sequential.masks());

        let params = concurrent.params();
        let hfp = concurrent.hash_kind().hash_fingerprint(fingerprint);
        for b1 in [0usize, 1, (1 << bucket_bits) - 1] {
            prop_assert_eq!(
                params.candidates(b1, hfp).buckets,
                sequential.params().candidates(b1, hfp).buckets
            );
        }
    }

    /// Theorem 1 closure, as the relocation path exercises it: for every
    /// member `b` of a candidate set, `{b} ∪ alternates(b, h)` equals the
    /// full candidate set. A relocation hop therefore never leaves the
    /// coset, whatever bucket it starts from.
    #[test]
    fn candidate_set_is_closed_under_alternates(
        bm1_bits in 1u64..(1 << 14) - 1,
        bucket_bits in 4u32..=10,
        fingerprint in 1u32..(1 << 14),
        b1_seed in any::<u64>(),
    ) {
        let masks = MaskPair::from_bm1(bm1_bits, 14).unwrap();
        let config = CuckooConfig::new(1 << bucket_bits).with_seed(7);
        let filter = ConcurrentVcf::with_masks(config, masks, "c".into()).unwrap();
        let params = filter.params();
        let hfp = filter.hash_kind().hash_fingerprint(fingerprint);
        let b1 = (b1_seed & params.index_mask()) as usize;

        let cands = params.candidates(b1, hfp);
        let set: HashSet<usize> = cands.buckets.iter().copied().collect();
        for &member in &cands.buckets {
            let mut reachable: HashSet<usize> =
                params.alternates(member, hfp).into_iter().collect();
            reachable.insert(member);
            prop_assert_eq!(
                &reachable, &set,
                "candidate set not closed from member bucket {}", member
            );
        }
    }

    /// Single-threaded differential: a random op soup against a multiset
    /// oracle. Tiny tables force the relocation path on nearly every
    /// insert, so the path-based kick walk gets exercised without any
    /// concurrency nondeterminism.
    #[test]
    fn single_threaded_differential_vs_oracle(
        bucket_bits in 4u32..=8,
        seed in any::<u64>(),
        ops in prop::collection::vec((0u8..3, 0u16..600), 1..400),
    ) {
        let filter =
            ConcurrentVcf::new(CuckooConfig::new(1 << bucket_bits).with_seed(seed)).unwrap();
        // Multiset oracle: key -> live copy count.
        let mut oracle: HashMap<u16, u32> = HashMap::new();
        let mut net = 0i64;
        for &(op, k) in &ops {
            let key = k.to_le_bytes();
            match op {
                0 => {
                    if filter.insert(&key).is_ok() {
                        *oracle.entry(k).or_insert(0) += 1;
                        net += 1;
                        prop_assert!(
                            filter.contains(&key),
                            "inserted key {} invisible", k
                        );
                    }
                }
                1 => {
                    // Only delete keys the oracle says are live: a copy
                    // removed this way is interchangeable (same
                    // fingerprint and, by Theorem 1, same candidate
                    // coset), so per-class copy counts — and therefore
                    // every live key's visibility — stay exact. Deleting
                    // a non-live key is skipped because a fingerprint
                    // alias could make it spuriously succeed and
                    // invalidate the per-key oracle.
                    if oracle.get(&k).copied().unwrap_or(0) > 0 {
                        prop_assert!(
                            filter.delete(&key),
                            "live key {} failed to delete", k
                        );
                        *oracle.get_mut(&k).unwrap() -= 1;
                        net -= 1;
                    }
                }
                _ => {
                    if oracle.get(&k).copied().unwrap_or(0) > 0 {
                        prop_assert!(filter.contains(&key), "false negative on {}", k);
                    }
                }
            }
        }
        prop_assert_eq!(filter.len() as i64, net, "occupancy drifted");
    }
}

/// Deterministic replay: the same seed and single-threaded op order give
/// identical results run-to-run (the per-walk PRNG derivation is a
/// deterministic counter when uncontended).
#[test]
fn single_threaded_runs_are_deterministic() {
    let run = || {
        let filter = ConcurrentVcf::new(CuckooConfig::new(1 << 6).with_seed(99)).unwrap();
        let mut stored = 0u32;
        for i in 0..400u32 {
            if filter.insert(&i.to_le_bytes()).is_ok() {
                stored += 1;
            }
        }
        (stored, filter.len(), filter.stats().kicks)
    };
    assert_eq!(run(), run());
}
