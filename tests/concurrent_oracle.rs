//! Differential oracle harness for `ConcurrentVcf`.
//!
//! N writer threads each apply a *deterministic* op log (seeded inserts,
//! deletes and own-key lookups over disjoint key prefixes) against one
//! shared filter. Each thread records exactly which of its operations
//! succeeded, so after the join we can reconstruct the ground truth as
//! the union of per-thread `HashSet` oracles and check:
//!
//! * **zero false negatives** — every key the oracle says is live must
//!   be reported present,
//! * **exact occupancy** — `len()` equals total successful inserts minus
//!   total successful deletes (relocation is occupancy-neutral),
//! * **no false deletes** — a thread deleting its *own* previously
//!   inserted key must succeed (keyspaces are disjoint, so nobody else
//!   can have removed it; fingerprint aliasing within a thread's own
//!   keyspace cannot cause a miss, only a interchangeable-copy removal).
//!
//! The op mix drives the table to ~95% load so the relocation path (the
//! only locked section) runs constantly, not just the CAS fast path.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;
use vertical_cuckoo_filters::vcf::{ConcurrentVcf, CuckooConfig};

const WRITERS: u64 = 8;

fn key(thread: u64, i: u64) -> Vec<u8> {
    format!("t{thread}-key-{i}").into_bytes()
}

/// Outcome of one thread's log: its live-key oracle and its net count.
struct ThreadOutcome {
    live: HashSet<u64>,
    successful_inserts: u64,
    successful_deletes: u64,
}

/// Runs one writer's deterministic op log. ~1/5 of successfully inserted
/// keys are deleted again; every mutation's success is recorded so the
/// oracle is exact even when the filter rejects inserts near capacity.
fn run_writer(filter: &ConcurrentVcf, thread: u64, ops: u64) -> ThreadOutcome {
    let mut rng = SmallRng::seed_from_u64(0xD1FF * 31 + thread);
    let mut live: HashSet<u64> = HashSet::new();
    let mut inserted: Vec<u64> = Vec::new();
    let mut successful_inserts = 0u64;
    let mut successful_deletes = 0u64;
    for i in 0..ops {
        if filter.insert(&key(thread, i)).is_ok() {
            live.insert(i);
            inserted.push(i);
            successful_inserts += 1;
            // Own-key read-back: an acknowledged insert must be visible
            // to the inserting thread immediately, even mid-churn.
            assert!(
                filter.contains(&key(thread, i)),
                "thread {thread}: own key {i} invisible right after insert"
            );
        }
        if rng.gen_range(0..5) == 0 {
            if let Some(&victim) = inserted.get(rng.gen_range(0..inserted.len().max(1))) {
                if live.contains(&victim) {
                    assert!(
                        filter.delete(&key(thread, victim)),
                        "thread {thread}: failed to delete own live key {victim}"
                    );
                    live.remove(&victim);
                    successful_deletes += 1;
                }
            }
        }
    }
    ThreadOutcome {
        live,
        successful_inserts,
        successful_deletes,
    }
}

fn run_oracle(buckets: usize, ops_per_thread: u64, seed: u64) {
    let filter = Arc::new(ConcurrentVcf::new(CuckooConfig::new(buckets).with_seed(seed)).unwrap());
    let handles: Vec<_> = (0..WRITERS)
        .map(|t| {
            let filter = Arc::clone(&filter);
            std::thread::spawn(move || run_writer(&filter, t, ops_per_thread))
        })
        .collect();
    let outcomes: Vec<(u64, ThreadOutcome)> = handles
        .into_iter()
        .enumerate()
        .map(|(t, h)| (t as u64, h.join().expect("writer thread panicked")))
        .collect();

    // Zero false negatives against the union oracle.
    for (t, outcome) in &outcomes {
        for &i in &outcome.live {
            assert!(
                filter.contains(&key(*t, i)),
                "false negative: thread {t} key {i} is live in the oracle"
            );
        }
    }

    // Exact occupancy: len == Σ successful inserts − Σ successful deletes.
    let net: u64 = outcomes
        .iter()
        .map(|(_, o)| o.successful_inserts - o.successful_deletes)
        .sum();
    assert_eq!(
        filter.len() as u64,
        net,
        "occupancy drifted from the per-thread success counts"
    );
    let live_total: usize = outcomes.iter().map(|(_, o)| o.live.len()).sum();
    assert_eq!(live_total as u64, net, "oracle bookkeeping is inconsistent");
}

/// The headline run: 8 writers drive the filter to ~95% load.
#[test]
fn eight_writers_at_95_percent_load() {
    // capacity = 512 * 4 = 2048; 8 threads * 305 inserts with ~1/5
    // deleted lands the steady state just around 95%.
    let buckets = 1 << 9;
    let ops = 305;
    run_oracle(buckets, ops, 0xA11CE);
    // Different interleavings each round: re-run with fresh seeds.
    run_oracle(buckets, ops, 0xB0B);
    run_oracle(buckets, ops, 0xCAFE);
}

/// Smaller table, proportionally more churn: relocation paths collide
/// far more often per bucket.
#[test]
fn eight_writers_on_a_small_hot_table() {
    run_oracle(1 << 6, 36, 0x5EED);
    run_oracle(1 << 6, 36, 0x5EED + 1);
}

/// Concurrent readers must never miss keys that were inserted before the
/// readers started and are never deleted — even while writers churn the
/// rest of the table and relocations hop fingerprints between the
/// readers' candidate buckets mid-probe.
#[test]
fn stable_keys_stay_visible_under_writer_churn() {
    let filter = Arc::new(ConcurrentVcf::new(CuckooConfig::new(1 << 9).with_seed(0xFEED)).unwrap());
    let stable: Vec<Vec<u8>> = (0..400).map(|i| key(99, i)).collect();
    for k in &stable {
        filter.insert(k).unwrap();
    }

    let writers: Vec<_> = (0..4u64)
        .map(|t| {
            let filter = Arc::clone(&filter);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t);
                for round in 0..200u64 {
                    for i in 0..8u64 {
                        let k = key(t, round * 8 + i);
                        let _ = filter.insert(&k);
                        if rng.gen_range(0..2) == 0 {
                            filter.delete(&k);
                        }
                    }
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let filter = Arc::clone(&filter);
            let stable = stable.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    for k in &stable {
                        assert!(filter.contains(k), "stable key vanished mid-churn");
                    }
                    let refs: Vec<&[u8]> = stable.iter().map(std::vec::Vec::as_slice).collect();
                    assert!(
                        filter.contains_batch(&refs).into_iter().all(|b| b),
                        "batched probe missed a stable key"
                    );
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    for r in readers {
        r.join().unwrap();
    }
    for k in &stable {
        assert!(filter.contains(k), "stable key lost after churn drained");
    }
}
