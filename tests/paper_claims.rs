//! Integration tests pinning the paper's headline comparative claims at
//! reduced scale. These are the "shape" assertions EXPERIMENTS.md reports
//! at full scale; here they run fast enough for CI.

use vertical_cuckoo_filters::analysis;
use vertical_cuckoo_filters::baselines::{CuckooFilter, DaryCuckooFilter};
use vertical_cuckoo_filters::traits::Filter;
use vertical_cuckoo_filters::vcf::{
    CuckooConfig, Dvcf, EvictionPolicy, KVcf, VerticalCuckooFilter,
};
use vertical_cuckoo_filters::workloads::KeyStream;

const SLOTS_LOG2: u32 = 14;

fn config(seed: u64) -> CuckooConfig {
    CuckooConfig::with_total_slots(1 << SLOTS_LOG2).with_seed(seed)
}

fn fill_all(filter: &mut dyn Filter, seed: u64) -> (f64, f64) {
    let slots = 1usize << SLOTS_LOG2;
    let keys = KeyStream::new(seed).take_vec(slots);
    let mut stored = 0usize;
    for key in &keys {
        if filter.insert(key).is_ok() {
            stored += 1;
        }
    }
    (
        stored as f64 / filter.capacity() as f64,
        filter.stats().kicks_per_insert(),
    )
}

/// Section I / Table III: VCF achieves a higher load factor than CF.
#[test]
fn claim_vcf_load_factor_beats_cf() {
    let mut cf_lf = 0.0;
    let mut vcf_lf = 0.0;
    for seed in 0..3u64 {
        cf_lf += fill_all(&mut CuckooFilter::new(config(seed)).unwrap(), seed).0;
        vcf_lf += fill_all(&mut VerticalCuckooFilter::new(config(seed)).unwrap(), seed).0;
    }
    assert!(
        vcf_lf > cf_lf + 0.01,
        "VCF LF {:.4} must clearly beat CF LF {:.4}",
        vcf_lf / 3.0,
        cf_lf / 3.0
    );
    assert!(
        vcf_lf / 3.0 > 0.99,
        "VCF should approach full load, got {}",
        vcf_lf / 3.0
    );
}

/// Fig. 8: VCF's eviction count is an order of magnitude below CF's.
#[test]
fn claim_vcf_cuts_evictions_by_roughly_10x() {
    let (_, cf_kicks) = fill_all(&mut CuckooFilter::new(config(1)).unwrap(), 1);
    let (_, vcf_kicks) = fill_all(&mut VerticalCuckooFilter::new(config(1)).unwrap(), 1);
    // Paper: CF ≈ 12.8, VCF ≈ 1.27.
    assert!(cf_kicks > 5.0 * vcf_kicks, "cf={cf_kicks} vcf={vcf_kicks}");
    assert!(
        cf_kicks > 8.0,
        "CF near-full should evict heavily: {cf_kicks}"
    );
    assert!(vcf_kicks < 2.5, "VCF should evict rarely: {vcf_kicks}");
}

/// Section V-C worked examples: measured E0 matches Equ. 14/15 within a
/// reasonable band for both CF and VCF.
#[test]
fn claim_model_predicts_measured_evictions() {
    let mut cf = CuckooFilter::new(config(2)).unwrap();
    let (cf_lf, cf_kicks) = fill_all(&mut cf, 2);
    let cf_model = analysis::e0(cf_lf, analysis::avg_insert_cost(cf_lf, 0.0, 4));
    assert!(
        (cf_kicks - cf_model).abs() / cf_model < 0.5,
        "CF: measured {cf_kicks}, model {cf_model}"
    );

    let mut vcf = VerticalCuckooFilter::new(config(2)).unwrap();
    let r = vcf.expected_r();
    let (vcf_lf, vcf_kicks) = fill_all(&mut vcf, 2);
    let vcf_model = analysis::e0(vcf_lf, analysis::avg_insert_cost(vcf_lf, r, 4));
    assert!(
        (vcf_kicks - vcf_model).abs() < 1.0,
        "VCF: measured {vcf_kicks}, model {vcf_model}"
    );
}

/// Fig. 9 / Equ. 10: FPR grows with r and roughly doubles from CF to VCF.
#[test]
fn claim_fpr_scales_with_r() {
    let slots = 1usize << SLOTS_LOG2;
    let measure = |filter: &mut dyn Filter| {
        let keys = KeyStream::new(3).take_vec(slots);
        for key in &keys {
            let _ = filter.insert(key);
        }
        let aliens = KeyStream::new(0xbad).take_vec(400_000);
        aliens.iter().filter(|k| filter.contains(k)).count() as f64 / aliens.len() as f64
    };
    let cf_fpr = measure(&mut CuckooFilter::new(config(3)).unwrap());
    let vcf_fpr = measure(&mut VerticalCuckooFilter::new(config(3)).unwrap());
    let ratio = vcf_fpr / cf_fpr;
    assert!(
        (1.5..=3.2).contains(&ratio),
        "VCF/CF FPR ratio should be ≈2 (paper: 0.974/0.485): cf={cf_fpr} vcf={vcf_fpr}"
    );
}

/// Table III orderings: DVCF sits between CF and VCF in load factor.
#[test]
fn claim_dvcf_interpolates_between_cf_and_vcf() {
    let (cf, _) = fill_all(&mut CuckooFilter::new(config(4)).unwrap(), 4);
    let (dvcf_low, _) = fill_all(&mut Dvcf::with_r(config(4), 0.25).unwrap(), 4);
    let (dvcf_high, _) = fill_all(&mut Dvcf::with_r(config(4), 0.875).unwrap(), 4);
    let (vcf, _) = fill_all(&mut VerticalCuckooFilter::new(config(4)).unwrap(), 4);
    assert!(cf < dvcf_low + 0.005, "cf={cf} dvcf(0.25)={dvcf_low}");
    assert!(
        dvcf_low < dvcf_high + 0.003,
        "dvcf(0.25)={dvcf_low} dvcf(0.875)={dvcf_high}"
    );
    assert!(
        dvcf_high <= vcf + 0.005,
        "dvcf(0.875)={dvcf_high} vcf={vcf}"
    );
}

/// Section III-B: VCF needs fewer hash computations per insert than CF
/// (each CF relocation re-hashes; VCF relocates far less often).
#[test]
fn claim_vcf_needs_fewer_hashes_per_insert() {
    let mut cf = CuckooFilter::new(config(5)).unwrap();
    fill_all(&mut cf, 5);
    let mut vcf = VerticalCuckooFilter::new(config(5)).unwrap();
    fill_all(&mut vcf, 5);
    let cf_hashes = cf.stats().hashes_per_insert();
    let vcf_hashes = vcf.stats().hashes_per_insert();
    assert!(
        vcf_hashes < cf_hashes,
        "VCF {vcf_hashes} hashes/insert must be below CF {cf_hashes}"
    );
}

/// Table V: k-VCF at MAX = 0 reaches ≈97 % load once k ≥ 9.
#[test]
fn claim_kvcf_high_load_without_relocation() {
    let mut kvcf = KVcf::new(config(6).with_fingerprint_bits(16).with_max_kicks(0), 9).unwrap();
    let (lf, kicks) = fill_all(&mut kvcf, 6);
    assert_eq!(kicks, 0.0, "MAX=0 must never relocate");
    assert!(lf > 0.94, "k=9 without kicks should approach 97%: {lf}");
}

/// Fig. 6: DCF lookups are the slowest of the family in probe count
/// terms (it always walks d buckets with base-d arithmetic).
#[test]
fn claim_dcf_pays_more_for_lookups() {
    let slots = 1usize << SLOTS_LOG2;
    let keys = KeyStream::new(7).take_vec(slots * 9 / 10);
    let aliens = KeyStream::new(0x7777).take_vec(20_000);

    let mut cf = CuckooFilter::new(config(7)).unwrap();
    let mut dcf = DaryCuckooFilter::new(config(7), 4).unwrap();
    for key in &keys {
        let _ = cf.insert(key);
        let _ = dcf.insert(key);
    }
    cf.reset_stats();
    dcf.reset_stats();
    for alien in &aliens {
        cf.contains(alien);
        dcf.contains(alien);
    }
    let cf_probes = cf.stats().lookups.probes_per_call();
    let dcf_probes = dcf.stats().lookups.probes_per_call();
    assert!(
        dcf_probes > 1.8 * cf_probes,
        "DCF negative lookups must probe ~2x CF: dcf={dcf_probes} cf={cf_probes}"
    );
}

/// Insert-side pipeline claim: at 95 % load, breadth-first eviction's
/// mean kicks-per-insert stays below the random-walk mean predicted by
/// the paper's Equ. 14/15 model (and below a measured walk, for good
/// measure). BFS finds shortest relocation paths, so it can only improve
/// on the walk the model describes.
#[test]
fn claim_bfs_kicks_stay_below_random_walk_model_at_95_load() {
    let slots = 1usize << SLOTS_LOG2;
    let n = slots * 95 / 100;
    let keys = KeyStream::new(7).take_vec(n);

    let mut bfs =
        VerticalCuckooFilter::new(config(7).with_eviction_policy(EvictionPolicy::Bfs)).unwrap();
    let r = bfs.expected_r();
    for key in &keys {
        bfs.insert(key).expect("VCF+BFS must absorb a 95 % fill");
    }
    let measured = bfs.stats().kicks_per_insert();

    let model = analysis::e0(0.95, analysis::avg_insert_cost(0.95, r, 4));
    assert!(
        measured < model,
        "BFS mean kicks/insert {measured:.3} must stay below the \
         random-walk model's {model:.3} at 95 % load"
    );

    let mut walk = VerticalCuckooFilter::new(config(7)).unwrap();
    for key in &keys {
        walk.insert(key).expect("VCF must absorb a 95 % fill");
    }
    assert!(
        bfs.stats().kicks <= walk.stats().kicks,
        "BFS total kicks {} must not exceed the measured walk's {}",
        bfs.stats().kicks,
        walk.stats().kicks
    );
}
