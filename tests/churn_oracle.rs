//! End-to-end churn correctness: replay generated online workloads
//! against every deletable filter and check each lookup against the
//! trace's ground truth. A positive-expected lookup answering `false` is
//! a false negative — forbidden for every structure in the workspace.

use vertical_cuckoo_filters::baselines::{CuckooFilter, DaryCuckooFilter};
use vertical_cuckoo_filters::traits::Filter;
use vertical_cuckoo_filters::vcf::{
    CuckooConfig, Dvcf, EvictionPolicy, KVcf, VerticalCuckooFilter,
};
use vertical_cuckoo_filters::workloads::{ChurnConfig, ChurnTrace, Op};

fn replay_and_check(filter: &mut dyn Filter, trace: &ChurnTrace) {
    let name = filter.name();
    let mut false_positives = 0u64;
    let mut negative_lookups = 0u64;
    for (i, op) in trace.iter().enumerate() {
        match op {
            Op::Insert(key) => {
                // The working set is sized well under capacity, so churn
                // inserts must always succeed.
                filter
                    .insert(key)
                    .unwrap_or_else(|e| panic!("{name}: insert {i} failed: {e}"));
            }
            Op::Delete(key) => {
                assert!(filter.delete(key), "{name}: delete {i} missed a live key");
            }
            Op::Lookup {
                key,
                expected_present,
            } => {
                let answer = filter.contains(key);
                if *expected_present {
                    assert!(answer, "{name}: false negative at op {i}");
                } else {
                    negative_lookups += 1;
                    if answer {
                        false_positives += 1;
                    }
                }
            }
        }
    }
    // False positives are allowed but must stay rare at 60 % occupancy.
    let fpr = false_positives as f64 / negative_lookups.max(1) as f64;
    assert!(fpr < 0.02, "{name}: churn FPR suspiciously high: {fpr}");
}

fn trace(seed: u64, working_set: usize) -> ChurnTrace {
    ChurnTrace::generate(ChurnConfig {
        working_set,
        rounds: 20_000,
        lookups_per_round: 2,
        positive_fraction: 0.5,
        seed,
    })
}

#[test]
fn churn_cf() {
    let config = CuckooConfig::with_total_slots(1 << 13).with_seed(1);
    let working_set = (1usize << 13) * 60 / 100;
    replay_and_check(
        &mut CuckooFilter::new(config).unwrap(),
        &trace(1, working_set),
    );
}

#[test]
fn churn_vcf() {
    let config = CuckooConfig::with_total_slots(1 << 13).with_seed(2);
    let working_set = (1usize << 13) * 60 / 100;
    replay_and_check(
        &mut VerticalCuckooFilter::new(config).unwrap(),
        &trace(2, working_set),
    );
}

#[test]
fn churn_ivcf() {
    let config = CuckooConfig::with_total_slots(1 << 13).with_seed(3);
    let working_set = (1usize << 13) * 60 / 100;
    replay_and_check(
        &mut VerticalCuckooFilter::with_mask_ones(config, 2).unwrap(),
        &trace(3, working_set),
    );
}

#[test]
fn churn_dvcf() {
    let config = CuckooConfig::with_total_slots(1 << 13).with_seed(4);
    let working_set = (1usize << 13) * 60 / 100;
    replay_and_check(
        &mut Dvcf::with_r(config, 0.5).unwrap(),
        &trace(4, working_set),
    );
}

#[test]
fn churn_kvcf() {
    let config = CuckooConfig::with_total_slots(1 << 13)
        .with_seed(5)
        .with_fingerprint_bits(16);
    let working_set = (1usize << 13) * 60 / 100;
    replay_and_check(&mut KVcf::new(config, 6).unwrap(), &trace(5, working_set));
}

#[test]
fn churn_dcf() {
    // DCF needs a power-of-4 bucket count: 2^12 slots → 4^5 buckets.
    let config = CuckooConfig::with_total_slots(1 << 12).with_seed(6);
    let working_set = (1usize << 12) * 60 / 100;
    replay_and_check(
        &mut DaryCuckooFilter::new(config, 4).unwrap(),
        &trace(6, working_set),
    );
}

/// Sustained churn at 90 % occupancy — the paper's hard regime. Kick
/// cascades happen constantly; correctness must hold throughout.
#[test]
fn churn_at_high_occupancy_vcf_vs_cf() {
    let slots = 1usize << 12;
    let working_set = slots * 90 / 100;
    let config = CuckooConfig::with_total_slots(slots).with_seed(9);
    let high_trace = trace(9, working_set);

    let mut vcf = VerticalCuckooFilter::new(config).unwrap();
    replay_and_check(&mut vcf, &high_trace);

    let mut cf = CuckooFilter::new(config).unwrap();
    replay_and_check(&mut cf, &high_trace);

    // And the headline: same trace, far fewer relocations for VCF.
    assert!(
        vcf.stats().kicks < cf.stats().kicks / 2,
        "VCF churn kicks {} should be well below CF's {}",
        vcf.stats().kicks,
        cf.stats().kicks
    );
}

/// The BFS eviction policy must give the same zero-false-negative
/// guarantee as the default random walk, under identical traces.
#[test]
fn churn_vcf_bfs() {
    let config = CuckooConfig::with_total_slots(1 << 13)
        .with_seed(2)
        .with_eviction_policy(EvictionPolicy::Bfs);
    let working_set = (1usize << 13) * 60 / 100;
    replay_and_check(
        &mut VerticalCuckooFilter::new(config).unwrap(),
        &trace(2, working_set),
    );
}

#[test]
fn churn_cf_bfs() {
    let config = CuckooConfig::with_total_slots(1 << 13)
        .with_seed(1)
        .with_eviction_policy(EvictionPolicy::Bfs);
    let working_set = (1usize << 13) * 60 / 100;
    replay_and_check(
        &mut CuckooFilter::new(config).unwrap(),
        &trace(1, working_set),
    );
}

#[test]
fn churn_kvcf_bfs() {
    let config = CuckooConfig::with_total_slots(1 << 13)
        .with_seed(5)
        .with_fingerprint_bits(16)
        .with_eviction_policy(EvictionPolicy::Bfs);
    let working_set = (1usize << 13) * 60 / 100;
    replay_and_check(&mut KVcf::new(config, 6).unwrap(), &trace(5, working_set));
}

/// BFS under the hard regime: sustained churn at 90 % occupancy, plus
/// the policy's own headline — shortest-path eviction relocates no more
/// than the random walk on the same trace.
#[test]
fn churn_at_high_occupancy_bfs_vs_random_walk() {
    let slots = 1usize << 12;
    let working_set = slots * 90 / 100;
    let config = CuckooConfig::with_total_slots(slots).with_seed(9);
    let high_trace = trace(9, working_set);

    let mut walk = VerticalCuckooFilter::new(config).unwrap();
    replay_and_check(&mut walk, &high_trace);

    let mut bfs =
        VerticalCuckooFilter::new(config.with_eviction_policy(EvictionPolicy::Bfs)).unwrap();
    replay_and_check(&mut bfs, &high_trace);

    assert!(
        bfs.stats().kicks <= walk.stats().kicks,
        "BFS churn kicks {} should not exceed the random walk's {}",
        bfs.stats().kicks,
        walk.stats().kicks
    );
}
