//! Cross-crate contract tests: every filter in the workspace must satisfy
//! the AMQ contract — no false negatives, multiset deletion semantics,
//! sane accounting — verified against a ground-truth oracle.

use std::collections::HashMap;
use vertical_cuckoo_filters::baselines::{
    AdaptiveCuckooFilter, BloomConfig, CountingBloomFilter, CuckooFilter, DaryCuckooFilter,
    DlCbfConfig, DlCountingBloomFilter, QuotientFilter, VacuumFilter,
};
use vertical_cuckoo_filters::traits::Filter;
use vertical_cuckoo_filters::vcf::{
    ConcurrentVcf, CuckooConfig, Dvcf, DynamicVcf, KVcf, ShardedConcurrentVcf, ShardedVcf,
    VerticalCuckooFilter,
};
use vertical_cuckoo_filters::workloads::KeyStream;

fn config() -> CuckooConfig {
    CuckooConfig::new(1 << 8).with_seed(17)
}

/// Every deletable filter in the workspace, freshly built.
fn deletable_filters() -> Vec<Box<dyn Filter>> {
    vec![
        Box::new(CuckooFilter::new(config()).unwrap()),
        Box::new(VerticalCuckooFilter::new(config()).unwrap()),
        Box::new(VerticalCuckooFilter::with_mask_ones(config(), 3).unwrap()),
        Box::new(Dvcf::with_r(config(), 0.5).unwrap()),
        Box::new(KVcf::new(config().with_fingerprint_bits(16), 6).unwrap()),
        Box::new(DaryCuckooFilter::new(config(), 4).unwrap()),
        Box::new(CountingBloomFilter::new(BloomConfig::for_items(1024, 1e-3)).unwrap()),
        Box::new(DlCountingBloomFilter::new(DlCbfConfig::for_items(1024)).unwrap()),
        Box::new(QuotientFilter::new(11, 12).unwrap()),
        Box::new(DynamicVcf::new(CuckooConfig::new(1 << 6).with_seed(17)).unwrap()),
        Box::new(ShardedVcf::new(CuckooConfig::new(1 << 8).with_seed(17), 2).unwrap()),
        Box::new(ConcurrentVcf::new(config()).unwrap()),
        Box::new(ShardedConcurrentVcf::new(CuckooConfig::new(1 << 8).with_seed(17), 2).unwrap()),
        Box::new(AdaptiveCuckooFilter::new(CuckooConfig::new(1 << 8).with_seed(17)).unwrap()),
        Box::new(VacuumFilter::new(192, 64, 4, 14, 500, 17).unwrap()),
    ]
}

#[test]
fn no_false_negatives_for_every_filter() {
    for mut filter in deletable_filters() {
        let keys = KeyStream::new(5).take_vec(700);
        let mut stored = Vec::new();
        for key in &keys {
            if filter.insert(key).is_ok() {
                stored.push(key.clone());
            }
        }
        for key in &stored {
            assert!(filter.contains(key), "{}: lost {key:?}", filter.name());
        }
    }
}

#[test]
fn delete_removes_exactly_one_copy() {
    for mut filter in deletable_filters() {
        let name = filter.name();
        filter.insert(b"dup").unwrap();
        filter.insert(b"dup").unwrap();
        filter.insert(b"dup").unwrap();
        assert!(filter.delete(b"dup"), "{name}");
        assert!(filter.contains(b"dup"), "{name}: copy 2 must survive");
        assert!(filter.delete(b"dup"), "{name}");
        assert!(filter.contains(b"dup"), "{name}: copy 3 must survive");
        assert!(filter.delete(b"dup"), "{name}");
        assert!(!filter.contains(b"dup"), "{name}: all copies deleted");
        assert!(!filter.delete(b"dup"), "{name}: nothing left to delete");
    }
}

#[test]
fn deleting_never_hides_other_items() {
    for mut filter in deletable_filters() {
        let name = filter.name();
        let keys = KeyStream::new(9).take_vec(600);
        let mut stored = Vec::new();
        for key in &keys {
            if filter.insert(key).is_ok() {
                stored.push(key.clone());
            }
        }
        let (to_delete, to_keep) = stored.split_at(stored.len() / 2);
        for key in to_delete {
            assert!(filter.delete(key), "{name}: failed to delete {key:?}");
        }
        for key in to_keep {
            assert!(
                filter.contains(key),
                "{name}: {key:?} hidden by unrelated delete"
            );
        }
    }
}

#[test]
fn len_tracks_oracle_under_interleaving() {
    // Random interleaving of inserts and deletes, checked against a
    // multiset oracle. Uses distinct keys with duplicates.
    for mut filter in deletable_filters() {
        let name = filter.name();
        let mut oracle: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut rng = vertical_cuckoo_filters::hash::SplitMix64::new(3);
        for step in 0..2000u64 {
            let key = format!("k{}", rng.next_below(300)).into_bytes();
            if rng.next_below(3) == 0 {
                // Deletion is only safe for previously inserted items
                // (paper Section III-B), so the oracle only deletes keys
                // it actually holds.
                if oracle.get(&key).copied().unwrap_or(0) > 0 {
                    assert!(
                        filter.delete(&key),
                        "{name}: failed to delete held key at step {step}: {key:?}"
                    );
                    *oracle.get_mut(&key).unwrap() -= 1;
                }
            } else if filter.insert(&key).is_ok() {
                *oracle.entry(key).or_insert(0) += 1;
            }
        }
        let oracle_len: usize = oracle.values().sum();
        assert_eq!(filter.len(), oracle_len, "{name}: len diverged from oracle");
        // Everything the oracle says is present must be found.
        for (key, &count) in &oracle {
            if count > 0 {
                assert!(filter.contains(key), "{name}: oracle item {key:?} missing");
            }
        }
    }
}

#[test]
fn contains_batch_agrees_with_single_lookups() {
    // The batched API is an optimisation, never a semantic change: for a
    // mixed present/absent batch every filter must answer exactly as its
    // one-at-a-time `contains` does, and leave the lookup counters with
    // one recorded call per item.
    for mut filter in deletable_filters() {
        let name = filter.name();
        let keys = KeyStream::new(23).take_vec(400);
        let mut stored = Vec::new();
        for key in &keys {
            if filter.insert(key).is_ok() {
                stored.push(key.clone());
            }
        }
        let aliens = KeyStream::new(777).take_vec(200);
        let mut batch: Vec<&[u8]> = Vec::new();
        for (present, absent) in stored.iter().zip(aliens.iter()) {
            batch.push(present);
            batch.push(absent);
        }
        let singles: Vec<bool> = batch.iter().map(|item| filter.contains(item)).collect();
        filter.reset_stats();
        let batched = filter.contains_batch(&batch);
        assert_eq!(batched, singles, "{name}: batch diverged from singles");
        assert_eq!(
            filter.stats().lookups.calls,
            batch.len() as u64,
            "{name}: batch must record one lookup per item"
        );
    }
}

#[test]
fn contains_batch_handles_empty_and_duplicate_batches() {
    for mut filter in deletable_filters() {
        let name = filter.name();
        assert!(
            filter.contains_batch(&[]).is_empty(),
            "{name}: empty batch must yield empty answers"
        );
        filter.insert(b"present").unwrap();
        let batch: Vec<&[u8]> = vec![b"present", b"absent", b"present", b"present"];
        assert_eq!(
            filter.contains_batch(&batch),
            vec![true, false, true, true],
            "{name}: duplicates in a batch must answer independently"
        );
    }
}

#[test]
fn bloom_filter_has_no_deletion_but_no_false_negatives() {
    use vertical_cuckoo_filters::baselines::BloomFilter;
    let mut bf = BloomFilter::new(BloomConfig::for_items(2000, 1e-3)).unwrap();
    assert!(!bf.supports_deletion());
    let keys = KeyStream::new(2).take_vec(2000);
    for key in &keys {
        bf.insert(key).unwrap();
    }
    for key in &keys {
        assert!(bf.contains(key));
    }
    assert!(!bf.delete(&keys[0]), "bloom delete must be a refused no-op");
    assert!(bf.contains(&keys[0]));
}

#[test]
fn failed_inserts_leave_filters_unchanged() {
    // Atomic-insert contract: fill each cuckoo filter to failure, snapshot
    // membership of all stored keys, slam more inserts, verify nothing
    // changed.
    let cuckoo_filters: Vec<Box<dyn Filter>> = vec![
        Box::new(CuckooFilter::new(CuckooConfig::new(1 << 5).with_seed(1)).unwrap()),
        Box::new(VerticalCuckooFilter::new(CuckooConfig::new(1 << 5).with_seed(1)).unwrap()),
        Box::new(Dvcf::with_r(CuckooConfig::new(1 << 5).with_seed(1), 0.75).unwrap()),
        Box::new(DaryCuckooFilter::new(CuckooConfig::new(1 << 6).with_seed(1), 4).unwrap()),
        Box::new(
            KVcf::new(
                CuckooConfig::new(1 << 5)
                    .with_fingerprint_bits(16)
                    .with_seed(1),
                5,
            )
            .unwrap(),
        ),
    ];
    for mut filter in cuckoo_filters {
        let name = filter.name();
        let mut stored = Vec::new();
        let mut saw_failure = false;
        for i in 0..(filter.capacity() as u64 * 2) {
            let key = format!("fill-{i}").into_bytes();
            if filter.insert(&key).is_ok() {
                stored.push(key);
            } else {
                saw_failure = true;
            }
        }
        assert!(saw_failure, "{name}: test needs the filter to overflow");
        let len_before = filter.len();
        for i in 0..64u64 {
            let _ = filter.insert(format!("extra-{i}").as_bytes());
        }
        // len may have grown if an extra insert legitimately found room,
        // but no stored key may ever disappear.
        assert!(filter.len() >= len_before, "{name}: len shrank");
        for key in &stored {
            assert!(
                filter.contains(key),
                "{name}: {key:?} lost to failed inserts"
            );
        }
    }
}
