//! Property tests for the tiered hot/cold lifecycle — the rotation
//! analogue of `proptest_scalable.rs`'s migration obligations.
//!
//! Rotation's invariance contract is sharper than migration's in one
//! direction and necessarily weaker in the other:
//!
//! * While a rotation is *in flight* (source still serving), **no
//!   lookup answer changes at all** — present or absent — because the
//!   source keeps answering with its exact table until the frozen
//!   generation is installed.
//! * Across the *install* step, answers are **monotone**: `true` can
//!   never become `false` (zero false negatives — the canonical key of
//!   every stored fingerprint, and of every query the source
//!   false-positives on, is frozen verbatim), while `false` may become
//!   `true` with probability ≈ 2⁻ᶠ (the frozen tier's own false
//!   positives). Asserting bit-identical answers across install would
//!   be asserting that an approximate structure is exact.

use proptest::prelude::*;
use std::collections::HashSet;
use vertical_cuckoo_filters::prelude::*;

fn answers(f: &TieredVcf16, queries: &[Vec<u8>]) -> Vec<bool> {
    queries.iter().map(|q| f.contains(q)).collect()
}

proptest! {
    /// Interleaved `rotate_step` calls never change any lookup answer
    /// while the rotation is in flight, and answers stay monotone
    /// (never true → false) across the install; present keys are found
    /// at every point. Batched lookups agree with serial throughout.
    #[test]
    fn rotation_preserves_lookup_answers(
        n in 50usize..300,
        step in 1usize..9,
        seed in 0u64..500,
    ) {
        let config = CuckooConfig::new(1 << 6)
            .with_fingerprint_bits(16)
            .with_seed(seed);
        let mut f = TieredVcf16::new(config).unwrap();
        f.set_rotate_budget(0); // rotation advances only where interleaved

        let present: Vec<Vec<u8>> = (0..n)
            .map(|i| format!("present-{seed}-{i}").into_bytes())
            .collect();
        for k in &present {
            prop_assert!(f.insert(k).is_ok());
        }
        let queries: Vec<Vec<u8>> = present
            .iter()
            .cloned()
            .chain((0..n).map(|i| format!("absent-{seed}-{i}").into_bytes()))
            .collect();
        let baseline = answers(&f, &queries);
        prop_assert!(baseline[..n].iter().all(|&b| b), "false negative pre-rotation");

        prop_assert!(f.rotate());
        let mut before_install = baseline.clone();
        let mut guard = 0;
        while f.rotation_backlog() > 0 {
            let installed_before = f.generations();
            let did = f.rotate_step(step);
            prop_assert!(did <= step, "rotate_step exceeded its budget");
            let now = answers(&f, &queries);
            if f.generations() == installed_before {
                // Source still serving: bit-identical answers.
                prop_assert_eq!(&before_install, &now,
                    "an in-flight rotation step changed a lookup answer");
            } else {
                // Install happened inside this step: monotone only.
                for (i, (&was, &is)) in before_install.iter().zip(&now).enumerate() {
                    prop_assert!(!was || is,
                        "install flipped answer {} true → false (false negative)", i);
                }
                before_install = now;
            }
            guard += 1;
            prop_assert!(guard < 100_000, "rotation never converged");
        }

        let after = answers(&f, &queries);
        prop_assert!(after[..n].iter().all(|&b| b), "false negative after rotation");
        for (i, (&was, &is)) in baseline.iter().zip(&after).enumerate() {
            prop_assert!(!was || is, "rotation lost answer {}", i);
        }
        let refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
        prop_assert_eq!(f.contains_batch(&refs), after,
            "batched lookups diverged from serial after rotation");
    }

    /// Rotations composed with churn never lose an acknowledged key:
    /// keys inserted before, during and after arbitrary rotation points
    /// all remain present; successful deletes stay deleted from the hot
    /// tier's answers only when no older generation also holds the key.
    #[test]
    fn churn_with_rotations_never_false_negatives(
        rounds in 1usize..4,
        per_round in 30usize..150,
        step in 1usize..16,
        seed in 0u64..500,
    ) {
        let config = CuckooConfig::new(1 << 6).with_seed(seed);
        let mut f = TieredVcf16::new(config).unwrap();
        let mut oracle: HashSet<Vec<u8>> = HashSet::new();

        for round in 0..rounds {
            for i in 0..per_round {
                let k = format!("churn-{seed}-{round}-{i}").into_bytes();
                prop_assert!(f.insert(&k).is_ok());
                oracle.insert(k);
            }
            prop_assert!(f.rotate());
            let mut guard = 0;
            while f.rotation_backlog() > 0 {
                f.rotate_step(step);
                guard += 1;
                prop_assert!(guard < 100_000, "rotation never converged");
            }
            prop_assert_eq!(f.generations(), round + 1);
            for k in &oracle {
                prop_assert!(f.contains(k), "acknowledged key lost after round {}", round);
            }
        }
        // Every generation's metadata is consistent with what was fed in.
        let lens = f.generation_lens();
        prop_assert_eq!(lens.len(), rounds);
        prop_assert!(lens.iter().all(|&l| l > 0 && l <= per_round));
    }
}
