//! Loom-style interleaving test for the two-bucket relocation critical
//! section.
//!
//! The workspace is offline, so instead of the `loom` crate this uses a
//! shim: the relocation protocol (`ConcurrentVcf::move_one`) and the
//! candidate-locked delete are re-expressed as explicit step state
//! machines over a real [`AtomicFingerprintTable`] and a real seqlock
//! word array. A driver then enumerates thousands of schedules — a bit
//! string chooses which actor advances at each step, falling back to
//! round-robin once the string is exhausted — and asserts protocol
//! invariants after *every* step of *every* schedule:
//!
//! * a fingerprint being relocated is never lost: it is visible in the
//!   source or destination bucket at each instant (copy-then-clear),
//! * it is never duplicated *beyond* the intentional transient second
//!   copy, which only exists while both bucket locks are held,
//! * the occupancy counter always equals the number of non-empty lanes,
//! * the "undo claim" fallback in `move_one` is unreachable when the
//!   locking discipline is followed (the state machine panics if it is
//!   ever entered — the two-bucket lock must make `replace_expect`
//!   infallible after validation).
//!
//! This checks the protocol's *logic* under every modelled interleaving;
//! it does not model weak memory (the schedules execute sequentially).
//! The memory-ordering argument is in DESIGN.md §7, and the
//! timing-driven stress tests live in `concurrent_oracle.rs`.

use std::sync::atomic::{AtomicU32, Ordering};
use vertical_cuckoo_filters::table::AtomicFingerprintTable;

const BUCKETS: usize = 4;
const SLOTS: usize = 4;
const FP_BITS: u32 = 8;

/// Per-bucket seqlock words, mirroring `ConcurrentVcf::versions`.
struct Locks(Vec<AtomicU32>);

impl Locks {
    fn new() -> Self {
        Self((0..BUCKETS).map(|_| AtomicU32::new(0)).collect())
    }

    /// One lock-acquisition attempt (a single schedule step). Returns
    /// `true` on success.
    fn try_lock(&self, bucket: usize) -> bool {
        let v = &self.0[bucket];
        let cur = v.load(Ordering::Relaxed);
        cur & 1 == 0
            && v.compare_exchange(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    fn unlock(&self, bucket: usize) {
        self.0[bucket].fetch_add(1, Ordering::Release);
    }

    fn is_locked(&self, bucket: usize) -> bool {
        self.0[bucket].load(Ordering::Relaxed) & 1 == 1
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Outcome {
    Pending,
    Won,
    Lost,
}

/// A step-at-a-time actor in the model.
enum Actor {
    /// `move_one` head hop: move `victim` out of `(src, src_slot)` into
    /// `dst`, installing `new_fp` in the vacated lane in the same CAS.
    Relocator {
        src: usize,
        src_slot: usize,
        victim: u32,
        dst: usize,
        new_fp: u32,
        state: u8,
        outcome: Outcome,
    },
    /// Candidate-locked delete of `fp`, probing `candidates` (held in
    /// ascending order, like `ConcurrentVcf::delete`).
    Deleter {
        candidates: Vec<usize>,
        fp: u32,
        state: u8,
        acquired: usize,
        outcome: Outcome,
    },
}

impl Actor {
    fn relocator(src: usize, src_slot: usize, victim: u32, dst: usize, new_fp: u32) -> Self {
        Actor::Relocator {
            src,
            src_slot,
            victim,
            dst,
            new_fp,
            state: 0,
            outcome: Outcome::Pending,
        }
    }

    fn deleter(mut candidates: Vec<usize>, fp: u32) -> Self {
        candidates.sort_unstable();
        candidates.dedup();
        Actor::Deleter {
            candidates,
            fp,
            state: 0,
            acquired: 0,
            outcome: Outcome::Pending,
        }
    }

    fn done(&self) -> bool {
        match self {
            Actor::Relocator { state, .. } => *state == 9,
            Actor::Deleter { state, .. } => *state == 3,
        }
    }

    fn outcome(&self) -> Outcome {
        match self {
            Actor::Relocator { outcome, .. } | Actor::Deleter { outcome, .. } => *outcome,
        }
    }

    /// Advances the actor by one atomic step of the modelled protocol.
    fn step(&mut self, table: &AtomicFingerprintTable, locks: &Locks) {
        match self {
            Actor::Relocator {
                src,
                src_slot,
                victim,
                dst,
                new_fp,
                state,
                outcome,
            } => {
                let (lo, hi) = if src <= dst {
                    (*src, *dst)
                } else {
                    (*dst, *src)
                };
                match *state {
                    // Lock low then high — the global ascending order.
                    0 => {
                        if locks.try_lock(lo) {
                            *state = if hi == lo { 2 } else { 1 };
                        }
                    }
                    1 => {
                        if locks.try_lock(hi) {
                            *state = 2;
                        }
                    }
                    // Re-validate the source lane under the locks.
                    2 => {
                        if table.get(*src, *src_slot) == *victim {
                            *state = 3;
                        } else {
                            *outcome = Outcome::Lost;
                            *state = 7;
                        }
                    }
                    // Claim a destination lane (transient second copy).
                    3 => match table.try_claim(*dst, *victim) {
                        Some(_) => *state = 4,
                        None => {
                            *outcome = Outcome::Lost;
                            *state = 7;
                        }
                    },
                    // Swap our fingerprint into the vacated source lane.
                    4 => {
                        if table.replace_expect(*src, *src_slot, *victim, *new_fp) {
                            *outcome = Outcome::Won;
                            *state = 7;
                        } else {
                            // move_one's defensive undo. With both bucket
                            // locks held past a successful validation it
                            // must be dead code; reaching it means the
                            // locking discipline failed to protect the
                            // source lane.
                            panic!("undo path reached: source lane changed under two-bucket lock");
                        }
                    }
                    // Release high then low.
                    7 => {
                        if hi != lo {
                            locks.unlock(hi);
                        }
                        *state = 8;
                    }
                    8 => {
                        locks.unlock(lo);
                        *state = 9;
                    }
                    _ => unreachable!("stepping a finished relocator"),
                }
            }
            Actor::Deleter {
                candidates,
                fp,
                state,
                acquired,
                outcome,
            } => match *state {
                // Acquire every candidate lock, ascending.
                0 => {
                    if locks.try_lock(candidates[*acquired]) {
                        *acquired += 1;
                        if *acquired == candidates.len() {
                            *state = 1;
                        }
                    }
                }
                // With all candidate locks held the probe-and-remove is
                // atomic with respect to every other critical section.
                1 => {
                    *outcome = Outcome::Lost;
                    for &bucket in candidates.iter() {
                        if let Some(slot) = table.find(bucket, *fp) {
                            assert!(
                                table.replace_expect(bucket, slot, *fp, 0),
                                "found lane changed under candidate locks"
                            );
                            *outcome = Outcome::Won;
                            break;
                        }
                    }
                    *state = 2;
                }
                // Release in reverse.
                2 => {
                    *acquired -= 1;
                    locks.unlock(candidates[*acquired]);
                    if *acquired == 0 {
                        *state = 3;
                    }
                }
                _ => unreachable!("stepping a finished deleter"),
            },
        }
    }
}

fn count_fp(table: &AtomicFingerprintTable, fp: u32) -> usize {
    let mut n = 0;
    for b in 0..BUCKETS {
        for s in 0..SLOTS {
            if table.get(b, s) == fp {
                n += 1;
            }
        }
    }
    n
}

fn count_nonzero(table: &AtomicFingerprintTable) -> usize {
    let mut n = 0;
    for b in 0..BUCKETS {
        for s in 0..SLOTS {
            if table.get(b, s) != 0 {
                n += 1;
            }
        }
    }
    n
}

/// Builds the shared table for a scenario: `victims` are pre-placed
/// fingerprints; `fill` packs extra distinct fingerprints into a bucket
/// to constrain free slots.
fn build_table(victims: &[(usize, u32)], fill: &[(usize, usize)]) -> AtomicFingerprintTable {
    let table = AtomicFingerprintTable::new(BUCKETS, SLOTS, FP_BITS).unwrap();
    for &(bucket, fp) in victims {
        table
            .try_claim(bucket, fp)
            .expect("victim placement failed");
    }
    let mut next_fp = 0xE0u32;
    for &(bucket, n) in fill {
        for _ in 0..n {
            table
                .try_claim(bucket, next_fp)
                .expect("filler placement failed");
            next_fp += 1;
        }
    }
    table
}

/// Drives two actors through the schedule encoded in `seed`, asserting
/// the step invariants for `tracked` fingerprints throughout, and
/// returns the actors' outcomes.
fn run_schedule(
    mut actors: [Actor; 2],
    table: &AtomicFingerprintTable,
    locks: &Locks,
    tracked: &[u32],
    seed: u64,
) -> [Outcome; 2] {
    let mut step = 0u32;
    while !(actors[0].done() && actors[1].done()) {
        assert!(step < 1_000, "schedule failed to terminate (deadlock?)");
        // Schedule bits first, then round-robin so blocked actors cannot
        // livelock the driver.
        let bit = if step < 14 {
            ((seed >> step) & 1) as usize
        } else {
            (step & 1) as usize
        };
        let pick = if actors[bit].done() { 1 - bit } else { bit };
        actors[pick].step(table, locks);
        step += 1;

        // Invariants at every step of every interleaving:
        for &fp in tracked {
            let copies = count_fp(table, fp);
            assert!(copies <= 2, "fingerprint {fp:#x} over-duplicated: {copies}");
            if copies == 2 {
                // The transient duplicate may exist only inside a locked
                // relocation hop.
                assert!(
                    (0..BUCKETS).any(|b| locks.is_locked(b)),
                    "duplicate of {fp:#x} visible with no bucket locked"
                );
            }
        }
        assert_eq!(
            table.occupied(),
            count_nonzero(table),
            "occupancy counter out of sync with physical lanes"
        );
    }
    [actors[0].outcome(), actors[1].outcome()]
}

const SCHEDULES: u64 = 1 << 14;

/// Two relocators race to move the *same* victim out of the same lane
/// toward different destinations. Exactly one may win; the victim ends
/// up in exactly one place; both new fingerprints are accounted
/// according to the winners.
#[test]
fn racing_relocators_same_victim_different_destinations() {
    const VICTIM: u32 = 0x11;
    for seed in 0..SCHEDULES {
        let table = build_table(&[(1, VICTIM)], &[]);
        let locks = Locks::new();
        let actors = [
            Actor::relocator(1, 0, VICTIM, 0, 0xAA),
            Actor::relocator(1, 0, VICTIM, 2, 0xBB),
        ];
        let outcomes = run_schedule(actors, &table, &locks, &[VICTIM, 0xAA, 0xBB], seed);
        let wins = outcomes.iter().filter(|&&o| o == Outcome::Won).count();
        assert_eq!(wins, 1, "seed {seed}: exactly one relocator must win");
        assert_eq!(
            count_fp(&table, VICTIM),
            1,
            "seed {seed}: victim lost or duplicated"
        );
        let winner_fp = if outcomes[0] == Outcome::Won {
            0xAA
        } else {
            0xBB
        };
        let loser_fp = if outcomes[0] == Outcome::Won {
            0xBB
        } else {
            0xAA
        };
        assert_eq!(
            count_fp(&table, winner_fp),
            1,
            "seed {seed}: winner's fp missing"
        );
        assert_eq!(
            count_fp(&table, loser_fp),
            0,
            "seed {seed}: loser's fp leaked"
        );
        assert_eq!(table.occupied(), 2, "seed {seed}: occupancy wrong");
    }
}

/// Two relocators with *different* victims race for the single free slot
/// of a shared destination bucket. The claim CAS arbitrates: one wins
/// the slot, the other aborts cleanly with its victim untouched.
#[test]
fn racing_relocators_contend_for_last_destination_slot() {
    const V1: u32 = 0x21;
    const V2: u32 = 0x22;
    for seed in 0..SCHEDULES {
        // Bucket 0 keeps exactly one free slot.
        let table = build_table(&[(1, V1), (2, V2)], &[(0, SLOTS - 1)]);
        let locks = Locks::new();
        let actors = [
            Actor::relocator(1, 0, V1, 0, 0xAA),
            Actor::relocator(2, 0, V2, 0, 0xBB),
        ];
        let outcomes = run_schedule(actors, &table, &locks, &[V1, V2], seed);
        let wins = outcomes.iter().filter(|&&o| o == Outcome::Won).count();
        assert_eq!(
            wins, 1,
            "seed {seed}: the single free slot admits one winner"
        );
        assert_eq!(
            count_fp(&table, V1),
            1,
            "seed {seed}: victim 1 lost/duplicated"
        );
        assert_eq!(
            count_fp(&table, V2),
            1,
            "seed {seed}: victim 2 lost/duplicated"
        );
        // Winner moved its victim and installed its fp; loser's victim
        // must still be in its original lane.
        if outcomes[0] == Outcome::Won {
            assert_eq!(table.get(2, 0), V2, "seed {seed}: loser's victim moved");
        } else {
            assert_eq!(table.get(1, 0), V1, "seed {seed}: loser's victim moved");
        }
    }
}

/// A relocator races a candidate-locked deleter for the same
/// fingerprint. Whatever the interleaving: the delete succeeds exactly
/// once (the fingerprint is continuously visible somewhere in its
/// candidate set), and afterwards exactly zero copies remain.
#[test]
fn relocator_races_candidate_locked_deleter() {
    const VICTIM: u32 = 0x33;
    for seed in 0..SCHEDULES {
        let table = build_table(&[(1, VICTIM)], &[]);
        let locks = Locks::new();
        let actors = [
            Actor::relocator(1, 0, VICTIM, 0, 0xAA),
            // The deleter holds the victim's whole (modelled) candidate
            // set, which by Theorem 1 closure contains both src and dst.
            Actor::deleter(vec![0, 1, 2, 3], VICTIM),
        ];
        let outcomes = run_schedule(actors, &table, &locks, &[VICTIM, 0xAA], seed);
        assert_eq!(
            outcomes[1],
            Outcome::Won,
            "seed {seed}: delete must find the continuously-visible fingerprint"
        );
        assert_eq!(
            count_fp(&table, VICTIM),
            0,
            "seed {seed}: deleted fp survived"
        );
        // The relocator either completed before the delete (moved the fp,
        // installed 0xAA, then the deleter removed the moved copy) or
        // lost its validation; either way 0xAA's count matches its
        // outcome.
        let expect_aa = usize::from(outcomes[0] == Outcome::Won);
        assert_eq!(
            count_fp(&table, 0xAA),
            expect_aa,
            "seed {seed}: inserted fp wrong"
        );
        assert_eq!(table.occupied(), count_nonzero(&table), "seed {seed}");
    }
}
