//! End-to-end smoke test: a live `vcf-server` on a Unix-domain socket,
//! driven by the loadgen, differentially checked against an in-process
//! oracle.
//!
//! Two legs:
//!
//! 1. **Bit-for-bit** — one connection replays a captured ≥100k-op
//!    mixed trace; an identically-configured in-process
//!    `ShardedConcurrentVcf` executes the same frames and every outcome
//!    bit must match (false positives are table-order-dependent, so this
//!    only holds when the op order is identical — hence one connection).
//! 2. **Concurrent** — four connections run the same workload shape
//!    concurrently; interleaving makes exact bits non-deterministic, so
//!    the invariant checked is the filter's own: zero false negatives
//!    (every key the server acknowledged as stored-and-not-deleted is
//!    found afterwards) and zero protocol errors.

use std::path::PathBuf;
use vcf_core::ShardedConcurrentVcf;
use vcf_server::loadgen::{self, LoadgenConfig, WorkloadKind};
use vcf_server::protocol::{bitmap_get, OpCode};
use vcf_server::{Client, Endpoint, ServerConfig, ServerHandle};
use vcf_traits::{BatchOpKind, FilterService};

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vcf-smoke-{tag}-{}.sock", std::process::id()))
}

fn smoke_server_config(tag: &str) -> ServerConfig {
    let mut config = ServerConfig::new(Endpoint::Uds(socket_path(tag)));
    config.slots = 1 << 18;
    config.shard_bits = 3;
    config.workers = 3;
    config.seed = 0x5155_AC4E;
    config
}

fn key_bytes(keys: &[u64]) -> Vec<[u8; 8]> {
    keys.iter().map(|k| k.to_le_bytes()).collect()
}

#[test]
fn uds_single_connection_matches_oracle_bit_for_bit() {
    let server_config = smoke_server_config("oracle");
    let mut server = ServerHandle::spawn(&server_config).expect("spawn server");

    // The oracle: same slots, same seed, same shard count — identical
    // routing and identical per-shard table evolution.
    let oracle = ShardedConcurrentVcf::new(server_config.cuckoo_config(), server_config.shard_bits)
        .expect("oracle config");

    let mut load = LoadgenConfig::new(server.endpoint().clone());
    load.connections = 1;
    load.batch = 256;
    load.total_ops = 120_000;
    load.read_fraction = 0.4;
    load.keyspace = 1 << 14;
    load.workload = WorkloadKind::Uniform;
    load.capture = true;
    let report = loadgen::run(&load).expect("loadgen run");
    assert!(report.data_ops >= 100_000, "run is at least 100k ops");
    assert_eq!(report.captures.len(), 1);

    let capture = &report.captures[0];
    assert_eq!(capture.frames.len(), capture.bitmaps.len());
    for (frame_idx, ((opcode, keys), bitmap)) in
        capture.frames.iter().zip(&capture.bitmaps).enumerate()
    {
        let op = match opcode {
            OpCode::Insert => BatchOpKind::Insert,
            OpCode::Lookup => BatchOpKind::Lookup,
            OpCode::Delete => BatchOpKind::Delete,
            other => panic!("data trace contains control opcode {other:?}"),
        };
        let bytes = key_bytes(keys);
        let refs: Vec<&[u8]> = bytes.iter().map(|k| &k[..]).collect();
        let expected = oracle.execute_batch(op, &refs);
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(
                bitmap_get(bitmap, i),
                *want,
                "frame {frame_idx} ({op:?}) bit {i} diverges from oracle"
            );
        }
    }

    // The server's engine and the oracle agree on the final cardinality.
    assert_eq!(server.engine().total_len(), oracle.len());
    let snapshot = server.metrics();
    assert_eq!(snapshot.proto_errors, 0, "zero protocol errors");
    server.shutdown();
}

#[test]
fn uds_concurrent_burst_has_zero_false_negatives() {
    let server_config = smoke_server_config("burst");
    let mut server = ServerHandle::spawn(&server_config).expect("spawn server");

    let mut load = LoadgenConfig::new(server.endpoint().clone());
    load.connections = 4;
    load.batch = 256;
    load.total_ops = 120_000;
    load.read_fraction = 0.4;
    load.keyspace = 1 << 13;
    load.workload = WorkloadKind::Uniform;
    load.capture = true;
    let report = loadgen::run(&load).expect("loadgen run");
    assert!(report.data_ops >= 100_000);
    assert_eq!(report.captures.len(), 4);

    // From each connection's acknowledged outcomes, reconstruct its
    // live set: inserted (bit=1) and not later deleted (bit=1). Keys
    // are connection-disjoint by construction, so other connections
    // cannot have removed them.
    let mut live: Vec<u64> = Vec::new();
    for capture in &report.captures {
        let mut conn_live = std::collections::HashSet::new();
        for ((opcode, keys), bitmap) in capture.frames.iter().zip(&capture.bitmaps) {
            for (i, key) in keys.iter().enumerate() {
                match opcode {
                    OpCode::Insert if bitmap_get(bitmap, i) => {
                        conn_live.insert(*key);
                    }
                    OpCode::Delete if bitmap_get(bitmap, i) => {
                        conn_live.remove(key);
                    }
                    _ => {}
                }
            }
        }
        live.extend(conn_live);
    }
    assert!(!live.is_empty(), "burst left live keys to verify");

    // A cuckoo filter may lie "present" but never "absent": every live
    // key must be found.
    let mut client = Client::connect(server.endpoint()).expect("verify connection");
    for chunk in live.chunks(256) {
        let reply = client.data_op(OpCode::Lookup, chunk).expect("lookup");
        for (i, key) in chunk.iter().enumerate() {
            assert!(reply.bit(i), "false negative for acknowledged key {key:#x}");
        }
    }

    // Zero protocol errors, observed through the wire itself (stats
    // word 6) and via the handle.
    let stats = client.stats().expect("stats");
    assert_eq!(stats[6], 0, "proto_errors stats word");
    assert_eq!(server.metrics().proto_errors, 0);
    drop(client);
    server.shutdown();
}

#[test]
fn uds_malformed_frames_are_survivable_on_a_live_socket() {
    let server_config = smoke_server_config("malformed");
    let mut server = ServerHandle::spawn(&server_config).expect("spawn server");
    let mut client = Client::connect(server.endpoint()).expect("connect");

    // Drainable garbage (unknown opcode + payload): error reply, then
    // the same connection keeps working.
    let mut raw = Vec::new();
    raw.extend_from_slice(&vcf_server::protocol::REQ_MAGIC.to_le_bytes());
    raw.push(vcf_server::protocol::WIRE_VERSION);
    raw.push(0x7E); // unknown opcode
    raw.extend_from_slice(&2u32.to_le_bytes());
    raw.extend_from_slice(&[0xAB; 16]);
    client.send_raw(&raw).expect("send garbage");
    let reply = client.read_reply(OpCode::Ping).expect("error reply");
    assert_eq!(reply.status, vcf_server::protocol::status::BAD_OPCODE);
    assert!(client.ping().expect("connection recovered"));

    // Framing-destroying garbage (bad magic): error reply, then the
    // server closes this connection; a fresh one still works.
    client.send_raw(&[0u8; 8]).expect("send bad magic");
    let reply = client.read_reply(OpCode::Ping).expect("error reply");
    assert_eq!(reply.status, vcf_server::protocol::status::BAD_MAGIC);
    let eof = client.ping();
    assert!(eof.is_err(), "server closed the desynchronized connection");

    let mut fresh = Client::connect(server.endpoint()).expect("reconnect");
    assert!(fresh.ping().expect("fresh connection"));
    assert_eq!(server.metrics().proto_errors, 2);
    server.shutdown();
}
