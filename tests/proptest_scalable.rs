//! Property tests for the elastic `ScalableVcf`.
//!
//! Two families, matching the migration-correctness obligations:
//!
//! 1. **Interleaving invariance.** `migrate_step` interleaved at
//!    arbitrary points never changes *any* lookup answer — not just the
//!    no-false-negative half: false positives are invariant too, because
//!    a colliding query shares the resident's fingerprint, hence its
//!    partition selector and coset, in every segment geometry.
//! 2. **Fingerprint equivalence.** A chain that has been fully migrated
//!    back to a single segment stores exactly the same canonical
//!    fingerprint multiset as a fresh `build_from_iter` of the surviving
//!    keys: each stored `(bucket, η)` reduces to the geometry-independent
//!    key `(min coset bucket, η)`, and the sorted multisets must match.

use proptest::prelude::*;
use vertical_cuckoo_filters::traits::{Filter, ScalableFilter};
use vertical_cuckoo_filters::vcf::{CuckooConfig, ScalableVcf};

/// Drives the backlog to zero through bounded steps, growing to unblock
/// a stalled drain (the documented recovery), and fails the property if
/// migration never converges.
fn drain_fully(f: &mut ScalableVcf, step: usize) -> Result<(), TestCaseError> {
    let mut guard = 0;
    while f.migration_backlog() > 0 {
        if f.migrate_step(step) == 0 && f.migration_backlog() > 0 {
            prop_assert!(f.grow().is_ok(), "grow failed while unblocking a stall");
        }
        guard += 1;
        prop_assert!(guard < 100_000, "migration never converged");
    }
    prop_assert_eq!(f.segments(), 1, "flat chain expected after full drain");
    Ok(())
}

/// Geometry-independent canonical form of every stored fingerprint: the
/// smallest bucket of its base-space coset, paired with the fingerprint.
/// Identical multisets ⇔ the filters answer identically forever.
fn canonical_fingerprints(f: &ScalableVcf) -> Vec<(usize, u32)> {
    let params = f.params();
    let hash = f.hash_kind();
    let mut canon: Vec<(usize, u32)> = f
        .stored()
        .map(|(_segment, bucket, fp)| {
            let lows = params.candidates(bucket, hash.hash_fingerprint(fp));
            let min_low = *lows.buckets.iter().min().expect("4 candidates");
            (min_low, fp)
        })
        .collect();
    canon.sort_unstable();
    canon
}

proptest! {
    /// (a) Interleaved `migrate_step` calls never change any lookup
    /// answer: the full answer vector over present *and* absent queries
    /// is identical after every step, at every step size.
    #[test]
    fn migrate_step_never_changes_lookup_answers(
        n in 50usize..400,
        step in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let config = CuckooConfig::new(1 << 6)
            .with_fingerprint_bits(16)
            .with_seed(seed);
        let mut f = ScalableVcf::new(config).unwrap();
        f.set_migrate_budget(0); // migration happens only where interleaved
        let keys: Vec<Vec<u8>> = (0..n)
            .map(|i| format!("present-{seed}-{i}").into_bytes())
            .collect();
        for k in &keys {
            prop_assert!(f.insert(k).is_ok());
        }
        let queries: Vec<Vec<u8>> = keys
            .iter()
            .cloned()
            .chain((0..n).map(|i| format!("absent-{seed}-{i}").into_bytes()))
            .collect();
        let baseline: Vec<bool> = queries.iter().map(|q| f.contains(q)).collect();
        prop_assert!(baseline[..n].iter().all(|&b| b), "false negative pre-migration");

        let mut guard = 0;
        while f.migration_backlog() > 0 {
            if f.migrate_step(step) == 0 && f.migration_backlog() > 0 {
                prop_assert!(f.grow().is_ok());
            }
            let now: Vec<bool> = queries.iter().map(|q| f.contains(q)).collect();
            prop_assert_eq!(&baseline, &now, "a migration step changed a lookup answer");
            guard += 1;
            prop_assert!(guard < 100_000, "migration never converged");
        }
        prop_assert_eq!(f.segments(), 1);
    }

    /// (b) A fully-migrated chain is fingerprint-equivalent to a fresh
    /// `build_from_iter` of the surviving keys.
    #[test]
    fn fully_migrated_chain_matches_fresh_build(
        n in 50usize..300,
        delete_every in 2usize..5,
        seed in 0u64..1_000,
    ) {
        let config = CuckooConfig::new(1 << 6)
            .with_fingerprint_bits(32)
            .with_seed(seed);
        let keys: Vec<Vec<u8>> = (0..n)
            .map(|i| format!("equiv-{seed}-{i}").into_bytes())
            .collect();

        // Chain A: insert everything, delete a subset, migrate fully.
        let mut chain = ScalableVcf::new(config).unwrap();
        chain.set_migrate_budget(0);
        for k in &keys {
            prop_assert!(chain.insert(k).is_ok());
        }
        let mut survivors: Vec<&[u8]> = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            if i % delete_every == 0 {
                prop_assert!(chain.delete(k), "delete of a live key failed");
            } else {
                survivors.push(k);
            }
        }
        drain_fully(&mut chain, 8)?;

        // Filter B: fresh bulk build of the survivors only.
        let mut fresh = ScalableVcf::new(config).unwrap();
        let results = fresh.build_from_iter(&mut survivors.iter().copied());
        prop_assert!(results.iter().all(Result::is_ok), "fresh build overflowed");

        prop_assert_eq!(chain.len(), survivors.len());
        prop_assert_eq!(fresh.len(), survivors.len());
        prop_assert_eq!(
            canonical_fingerprints(&chain),
            canonical_fingerprints(&fresh),
            "fully-migrated chain must store the survivors' fingerprint multiset"
        );
    }
}
