//! False-positive-rate regression against the analytic model.
//!
//! Fills CF, VCF and `ConcurrentVcf` to ~95% load with 8-bit
//! fingerprints, measures the empirical FPR over a large alien probe
//! set, and pins it to within 2× of `vcf_analysis::fpr_upper_bound`
//! (Equ. 10, with `r = 0` degenerating to the classic two-candidate CF
//! bound). A silent fingerprint-width, masking or probe-set bug moves
//! the empirical rate by integer factors, which this window catches —
//! including on the atomic word path, where a lane-shift bug would
//! match against the wrong bits.

use vertical_cuckoo_filters::analysis::fpr_upper_bound;
use vertical_cuckoo_filters::baselines::CuckooFilter;
use vertical_cuckoo_filters::hash::mix64;
use vertical_cuckoo_filters::sketches::BinaryFuse8;
use vertical_cuckoo_filters::traits::{Filter, ScalableFilter};
use vertical_cuckoo_filters::vcf::{
    ConcurrentVcf, CuckooConfig, ScalableVcf, VerticalCuckooFilter,
};

const ALIENS: u64 = 150_000;

fn config() -> CuckooConfig {
    CuckooConfig::new(1 << 12)
        .with_fingerprint_bits(8)
        .with_seed(42)
}

fn stored_key(i: u64) -> Vec<u8> {
    format!("member-{i}").into_bytes()
}

fn alien_key(i: u64) -> Vec<u8> {
    format!("alien-{i}").into_bytes()
}

/// Fills `filter` toward 95% load, measures the empirical FPR, and
/// checks it against the model with the *measured* load factor.
fn assert_fpr_tracks_model(filter: &mut dyn Filter, r: f64) {
    let target = (filter.capacity() as f64 * 0.95).ceil() as u64;
    let mut stored = 0u64;
    let mut i = 0u64;
    while stored < target {
        if filter.insert(&stored_key(i)).is_ok() {
            stored += 1;
        }
        i += 1;
        assert!(
            i < 2 * filter.capacity() as u64,
            "{}: could not reach 95% load",
            filter.name()
        );
    }
    let alpha = stored as f64 / filter.capacity() as f64;
    assert!(alpha >= 0.95, "{}: alpha only {alpha}", filter.name());

    let mut false_positives = 0u64;
    for a in 0..ALIENS {
        if filter.contains(&alien_key(a)) {
            false_positives += 1;
        }
    }
    let empirical = false_positives as f64 / ALIENS as f64;
    let bound = fpr_upper_bound(r, 4, alpha, 8);
    assert!(
        empirical < 2.0 * bound,
        "{}: empirical FPR {empirical:.4} exceeds 2x model bound {bound:.4}",
        filter.name()
    );
    // And not suspiciously low either: a filter quietly using wider
    // fingerprints (or probing too few buckets) would undershoot the
    // model by integer factors.
    assert!(
        empirical > bound / 4.0,
        "{}: empirical FPR {empirical:.4} implausibly below model bound {bound:.4}",
        filter.name()
    );
}

#[test]
fn cuckoo_filter_fpr_matches_two_candidate_model() {
    // CF probes two candidate buckets: Equ. 10 with r = 0.
    let mut cf = CuckooFilter::new(config()).unwrap();
    assert_fpr_tracks_model(&mut cf, 0.0);
}

#[test]
fn sequential_vcf_fpr_matches_model() {
    let mut vcf = VerticalCuckooFilter::new(config()).unwrap();
    let r = vcf.expected_r();
    assert!(r > 0.5, "balanced 8-bit masks should give r near 0.88");
    assert_fpr_tracks_model(&mut vcf, r);
}

#[test]
fn concurrent_vcf_fpr_matches_model() {
    let mut cvcf = ConcurrentVcf::new(config()).unwrap();
    let r = cvcf.expected_r();
    assert!(r > 0.5, "balanced 8-bit masks should give r near 0.88");
    assert_fpr_tracks_model(&mut cvcf, r);
}

/// Growth leg: the elastic filter's FPR, measured **immediately after
/// each doubling**, stays within 2× of the k-segment analysis model.
///
/// A `ScalableVcf` lookup probes the query's four candidate buckets in
/// *every* segment of the chain, so the chain FPR is a union bound over
/// per-segment terms. But the per-segment term is **not** the plain
/// single-segment model: a segment `p_i` doublings above the base is
/// split into `2^p_i` partitions, and the partition is *selected from
/// the fingerprint's own hash* (it must be — migration can only recompute
/// placement from stored bits, Theorem 1 style). A query therefore only
/// ever probes the partition that holds residents whose fingerprints
/// share its `p_i` selector bits, which enriches the per-slot match
/// probability from `2^−f` to `2^−(f − p_i)`: every partition bit is one
/// effective fingerprint bit spent on addressing — the same
/// fingerprint-vs-index trade recorded for segmented growth in the
/// smaller-and-more-flexible line of cuckoo-filter work. Hence:
///
/// ```text
/// FPR_chain(α_1..α_k) ≤ Σ_{i=1..k} fpr_upper_bound(r, b, α_i, f − p_i)
/// ```
///
/// where `α_i` is segment `i`'s load and `p_i = log2(buckets_i / base)`
/// (Equ. 10 per segment at the effective width). The fan-out cost is
/// shared: right after a doubling the fresh active segment is nearly
/// empty and contributes almost nothing, and drained cold segments fall
/// out of the sum — so the chain tracks this model within small constant
/// factors instead of degrading linearly in k forever. The window is
/// two-sided: a filter quietly probing fewer segments (false negatives
/// waiting to happen) or comparing wider fingerprints would undershoot
/// the model by integer factors.
#[test]
fn scalable_vcf_fpr_tracks_k_segment_model_after_each_doubling() {
    // f = 12 keeps the effective width `f − p_i` comfortably positive
    // through four doublings while the absolute FPR stays large enough
    // (hundreds of hits over the alien set) to measure above noise.
    const F: u32 = 12;
    let mut filter = ScalableVcf::new(
        CuckooConfig::new(1 << 10)
            .with_fingerprint_bits(F)
            .with_seed(42),
    )
    .unwrap();
    let r = filter.expected_r();
    assert!(r > 0.5, "balanced 12-bit masks should give r near 0.88");

    let mut i = 0u64;
    let mut doublings = 0u32;
    // Drained cold segments pop off the chain, so total capacity can dip;
    // a new *peak* capacity is exactly "a larger active segment exists".
    let mut peak_capacity = filter.capacity();
    while doublings < 4 {
        filter
            .insert(&stored_key(i))
            .unwrap_or_else(|e| panic!("growth-leg insert {i} failed: {e}"));
        i += 1;
        if filter.capacity() <= peak_capacity {
            continue;
        }
        // A doubling just happened: measure while the chain is at its
        // longest and the model sum at its most pessimistic.
        peak_capacity = filter.capacity();
        doublings += 1;
        let mut false_positives = 0u64;
        for a in 0..ALIENS {
            if filter.contains(&alien_key(a)) {
                false_positives += 1;
            }
        }
        let empirical = false_positives as f64 / ALIENS as f64;
        let lens = filter.segment_lens();
        let caps = filter.segment_capacities();
        let base_bits = filter.base_buckets().trailing_zeros();
        let bound: f64 = lens
            .iter()
            .zip(&caps)
            .map(|(&len, &cap)| {
                // Effective fingerprint width: each partition bit of this
                // segment is spent on addressing (see the doc comment).
                let p = (cap / 4).trailing_zeros() - base_bits;
                assert!(p < F, "segment outgrew the fingerprint: p = {p}");
                fpr_upper_bound(r, 4, len as f64 / cap as f64, F - p)
            })
            .sum();
        assert!(
            empirical < 2.0 * bound,
            "doubling {doublings}: empirical FPR {empirical:.4} exceeds 2x the \
             k-segment bound {bound:.4} (lens {lens:?}, caps {caps:?})"
        );
        assert!(
            empirical > bound / 4.0,
            "doubling {doublings}: empirical FPR {empirical:.4} implausibly below \
             the k-segment bound {bound:.4} (lens {lens:?}, caps {caps:?})"
        );
    }
}

/// Frozen-tier leg: the binary fuse filter's measured FPR sits within
/// 2× of the `ε ≈ 1.23·2⁻ᶠ` model (the constant is conservative — a
/// fuse query XORs three uniformly-assigned lanes, so the structural
/// rate is `2⁻ᶠ` in expectation; 1.23 absorbs construction skew). The
/// window is two-sided, like every other leg: quietly comparing wider
/// lanes would undershoot by integer factors.
#[test]
fn binary_fuse_fpr_matches_lane_model() {
    let members: Vec<u64> = (0..20_000u64).map(|i| mix64(i ^ 0xf00d)).collect();
    let fuse = BinaryFuse8::from_keys(&members, 42).unwrap();
    let mut false_positives = 0u64;
    for a in 0..ALIENS {
        if fuse.contains_key(mix64(a ^ 0xdead_beef_0000)) {
            false_positives += 1;
        }
    }
    let empirical = false_positives as f64 / ALIENS as f64;
    let model = 1.23 * (2.0f64).powi(-8);
    assert!(
        empirical < 2.0 * model,
        "fuse8: empirical FPR {empirical:.5} exceeds 2x model {model:.5}"
    );
    assert!(
        empirical > model / 4.0,
        "fuse8: empirical FPR {empirical:.5} implausibly below model {model:.5}"
    );
}

/// Acceptance bar for the frozen tier: a fuse generation drained from a
/// 16-bit-fingerprint VCF beats an equivalently-loaded 11-bit VCF on
/// **both** axes — ≤ 0.85× bits per stored item at equal-or-better FPR.
///
/// The comparison is honest about the freeze path: the fuse holds
/// *canonical coset keys* derived from the source's stored bits (never
/// the original items), so its end-to-end FPR is the canonical-key
/// identity-collision rate of the f = 16 source (≈ 2⁻¹³·n/cosets,
/// negligible here) plus the structural `2⁻⁸` lane rate — still below
/// the 11-bit VCF's `≈ 16·α·2⁻¹¹`, while the lane array stores ~9.5
/// bits/item against the VCF's `11/α`.
#[test]
fn frozen_fuse_beats_equally_loaded_vcf_on_bits_and_fpr() {
    const BUCKETS: usize = 1 << 15;
    let mut source = VerticalCuckooFilter::new(
        CuckooConfig::new(BUCKETS)
            .with_fingerprint_bits(16)
            .with_seed(42),
    )
    .unwrap();
    let mut comparator = VerticalCuckooFilter::new(
        CuckooConfig::new(BUCKETS)
            .with_fingerprint_bits(11)
            .with_seed(42),
    )
    .unwrap();
    let target = (source.capacity() as f64 * 0.95).ceil() as u64;
    let mut stored = 0u64;
    let mut i = 0u64;
    while stored < target {
        if source.insert(&stored_key(i)).is_ok() && comparator.insert(&stored_key(i)).is_ok() {
            stored += 1;
        }
        i += 1;
        assert!(i < 3 * source.capacity() as u64, "could not reach 95% load");
    }

    // Freeze: drain the source's stored bits into a fuse generation.
    let canonical: Vec<u64> = source.canonical_keys().collect();
    assert_eq!(canonical.len() as u64, stored);
    let fuse = BinaryFuse8::from_keys(&canonical, 7).unwrap();

    let mut fuse_fp = 0u64;
    let mut vcf_fp = 0u64;
    for a in 0..ALIENS {
        let alien = alien_key(a);
        if fuse.contains_key(source.canonical_key(&alien)) {
            fuse_fp += 1;
        }
        if comparator.contains(&alien) {
            vcf_fp += 1;
        }
    }
    let fuse_fpr = fuse_fp as f64 / ALIENS as f64;
    let vcf_fpr = vcf_fp as f64 / ALIENS as f64;
    let fuse_bits = fuse.storage_bytes() as f64 * 8.0 / stored as f64;
    let vcf_bits = (comparator.capacity() as f64 * 11.0) / stored as f64;

    assert!(
        fuse_fpr <= vcf_fpr,
        "frozen fuse FPR {fuse_fpr:.5} worse than the 11-bit VCF's {vcf_fpr:.5}"
    );
    assert!(
        fuse_bits <= 0.85 * vcf_bits,
        "frozen fuse spends {fuse_bits:.2} bits/item, more than 0.85x the \
         equivalently-loaded VCF's {vcf_bits:.2}"
    );
}

/// The two VCF paths are the same algorithm over different storage; at
/// identical configuration their empirical FPRs must agree closely, not
/// just both sit under the bound.
#[test]
fn concurrent_and_sequential_vcf_fpr_agree() {
    let measure = |filter: &mut dyn Filter| {
        let target = (filter.capacity() as f64 * 0.95) as u64;
        let mut stored = 0u64;
        let mut i = 0u64;
        while stored < target {
            if filter.insert(&stored_key(i)).is_ok() {
                stored += 1;
            }
            i += 1;
        }
        let mut fp = 0u64;
        for a in 0..ALIENS {
            if filter.contains(&alien_key(a)) {
                fp += 1;
            }
        }
        fp as f64 / ALIENS as f64
    };
    let sequential = measure(&mut VerticalCuckooFilter::new(config()).unwrap());
    let concurrent = measure(&mut ConcurrentVcf::new(config()).unwrap());
    let ratio = sequential.max(concurrent) / sequential.min(concurrent).max(1e-9);
    assert!(
        ratio < 1.25,
        "FPR diverged between storage paths: sequential {sequential:.4} vs concurrent {concurrent:.4}"
    );
}
