//! False-positive-rate regression against the analytic model.
//!
//! Fills CF, VCF and `ConcurrentVcf` to ~95% load with 8-bit
//! fingerprints, measures the empirical FPR over a large alien probe
//! set, and pins it to within 2× of `vcf_analysis::fpr_upper_bound`
//! (Equ. 10, with `r = 0` degenerating to the classic two-candidate CF
//! bound). A silent fingerprint-width, masking or probe-set bug moves
//! the empirical rate by integer factors, which this window catches —
//! including on the atomic word path, where a lane-shift bug would
//! match against the wrong bits.

use vertical_cuckoo_filters::analysis::fpr_upper_bound;
use vertical_cuckoo_filters::baselines::CuckooFilter;
use vertical_cuckoo_filters::traits::Filter;
use vertical_cuckoo_filters::vcf::{ConcurrentVcf, CuckooConfig, VerticalCuckooFilter};

const ALIENS: u64 = 150_000;

fn config() -> CuckooConfig {
    CuckooConfig::new(1 << 12)
        .with_fingerprint_bits(8)
        .with_seed(42)
}

fn stored_key(i: u64) -> Vec<u8> {
    format!("member-{i}").into_bytes()
}

fn alien_key(i: u64) -> Vec<u8> {
    format!("alien-{i}").into_bytes()
}

/// Fills `filter` toward 95% load, measures the empirical FPR, and
/// checks it against the model with the *measured* load factor.
fn assert_fpr_tracks_model(filter: &mut dyn Filter, r: f64) {
    let target = (filter.capacity() as f64 * 0.95).ceil() as u64;
    let mut stored = 0u64;
    let mut i = 0u64;
    while stored < target {
        if filter.insert(&stored_key(i)).is_ok() {
            stored += 1;
        }
        i += 1;
        assert!(
            i < 2 * filter.capacity() as u64,
            "{}: could not reach 95% load",
            filter.name()
        );
    }
    let alpha = stored as f64 / filter.capacity() as f64;
    assert!(alpha >= 0.95, "{}: alpha only {alpha}", filter.name());

    let mut false_positives = 0u64;
    for a in 0..ALIENS {
        if filter.contains(&alien_key(a)) {
            false_positives += 1;
        }
    }
    let empirical = false_positives as f64 / ALIENS as f64;
    let bound = fpr_upper_bound(r, 4, alpha, 8);
    assert!(
        empirical < 2.0 * bound,
        "{}: empirical FPR {empirical:.4} exceeds 2x model bound {bound:.4}",
        filter.name()
    );
    // And not suspiciously low either: a filter quietly using wider
    // fingerprints (or probing too few buckets) would undershoot the
    // model by integer factors.
    assert!(
        empirical > bound / 4.0,
        "{}: empirical FPR {empirical:.4} implausibly below model bound {bound:.4}",
        filter.name()
    );
}

#[test]
fn cuckoo_filter_fpr_matches_two_candidate_model() {
    // CF probes two candidate buckets: Equ. 10 with r = 0.
    let mut cf = CuckooFilter::new(config()).unwrap();
    assert_fpr_tracks_model(&mut cf, 0.0);
}

#[test]
fn sequential_vcf_fpr_matches_model() {
    let mut vcf = VerticalCuckooFilter::new(config()).unwrap();
    let r = vcf.expected_r();
    assert!(r > 0.5, "balanced 8-bit masks should give r near 0.88");
    assert_fpr_tracks_model(&mut vcf, r);
}

#[test]
fn concurrent_vcf_fpr_matches_model() {
    let mut cvcf = ConcurrentVcf::new(config()).unwrap();
    let r = cvcf.expected_r();
    assert!(r > 0.5, "balanced 8-bit masks should give r near 0.88");
    assert_fpr_tracks_model(&mut cvcf, r);
}

/// The two VCF paths are the same algorithm over different storage; at
/// identical configuration their empirical FPRs must agree closely, not
/// just both sit under the bound.
#[test]
fn concurrent_and_sequential_vcf_fpr_agree() {
    let measure = |filter: &mut dyn Filter| {
        let target = (filter.capacity() as f64 * 0.95) as u64;
        let mut stored = 0u64;
        let mut i = 0u64;
        while stored < target {
            if filter.insert(&stored_key(i)).is_ok() {
                stored += 1;
            }
            i += 1;
        }
        let mut fp = 0u64;
        for a in 0..ALIENS {
            if filter.contains(&alien_key(a)) {
                fp += 1;
            }
        }
        fp as f64 / ALIENS as f64
    };
    let sequential = measure(&mut VerticalCuckooFilter::new(config()).unwrap());
    let concurrent = measure(&mut ConcurrentVcf::new(config()).unwrap());
    let ratio = sequential.max(concurrent) / sequential.min(concurrent).max(1e-9);
    assert!(
        ratio < 1.25,
        "FPR diverged between storage paths: sequential {sequential:.4} vs concurrent {concurrent:.4}"
    );
}
