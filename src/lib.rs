//! # vertical-cuckoo-filters
//!
//! Facade crate for the Vertical Cuckoo Filter workspace — a from-scratch
//! Rust reproduction of *"The Vertical Cuckoo Filters: A Family of
//! Insertion-friendly Sketches for Online Applications"* (ICDCS 2021).
//!
//! Each member crate is re-exported under a short module name; the
//! [`prelude`] pulls in the handful of types most applications need.
//!
//! ```
//! use vertical_cuckoo_filters::prelude::*;
//!
//! let mut filter = VerticalCuckooFilter::new(CuckooConfig::new(1 << 10))?;
//! filter.insert(b"key")?;
//! assert!(filter.contains(b"key"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`vcf`] | `vcf-core` | VCF, IVCF, DVCF, k-VCF, sharded/dynamic variants, snapshots |
//! | [`baselines`] | `vcf-baselines` | CF, DCF, Bloom, CBF, dlCBF, quotient filter |
//! | [`table`] | `vcf-table` | bit-packed slot storage |
//! | [`hash`] | `vcf-hash` | FNV, MurmurHash3, DJB2, SplitMix64 |
//! | [`traits`] | `vcf-traits` | the `Filter` trait, errors, stats |
//! | [`workloads`] | `vcf-workloads` | HIGGS-like datasets, key streams, churn traces |
//! | [`analysis`] | `vcf-analysis` | Section V analytic model |
//! | [`sketches`] | `vcf-sketches` | vertical-hashing Count-Min sketch |

#![forbid(unsafe_code)]

pub use vcf_analysis as analysis;
pub use vcf_baselines as baselines;
pub use vcf_core as vcf;
pub use vcf_hash as hash;
pub use vcf_sketches as sketches;
pub use vcf_table as table;
pub use vcf_traits as traits;
pub use vcf_workloads as workloads;

/// The types most applications need, in one import.
pub mod prelude {
    pub use vcf_baselines::CuckooFilter;
    pub use vcf_core::{
        ConcurrentVcf, CuckooConfig, Dvcf, DynamicVcf, KVcf, ScalableVcf, ShardedConcurrentVcf,
        ShardedScalableVcf, ShardedVcf, VerticalCuckooFilter,
    };
    pub use vcf_hash::HashKind;
    pub use vcf_traits::{
        BuildError, ConcurrentFilter, Filter, FilterExt, InsertError, ScalableFilter, Stats,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_basics() {
        let mut filter =
            VerticalCuckooFilter::new(CuckooConfig::new(64).with_hash(HashKind::Djb2)).unwrap();
        filter.insert(b"a").unwrap();
        assert!(filter.contains(b"a"));
        let keys: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        assert_eq!(
            filter.insert_best_effort(keys.iter().map(Vec::as_slice)),
            10
        );
    }
}
