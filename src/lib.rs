//! # vertical-cuckoo-filters
//!
//! Facade crate for the Vertical Cuckoo Filter workspace — a from-scratch
//! Rust reproduction of *"The Vertical Cuckoo Filters: A Family of
//! Insertion-friendly Sketches for Online Applications"* (ICDCS 2021).
//!
//! Each member crate is re-exported under a short module name; the
//! [`prelude`] pulls in the handful of types most applications need.
//!
//! ```
//! use vertical_cuckoo_filters::prelude::*;
//!
//! let mut filter = VerticalCuckooFilter::new(CuckooConfig::new(1 << 10))?;
//! filter.insert(b"key")?;
//! assert!(filter.contains(b"key"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`vcf`] | `vcf-core` | VCF, IVCF, DVCF, k-VCF, sharded/dynamic variants, snapshots |
//! | [`baselines`] | `vcf-baselines` | CF, DCF, Bloom, CBF, dlCBF, quotient filter |
//! | [`table`] | `vcf-table` | bit-packed slot storage |
//! | [`hash`] | `vcf-hash` | FNV, MurmurHash3, DJB2, SplitMix64 |
//! | [`traits`] | `vcf-traits` | the `Filter` trait, errors, stats |
//! | [`workloads`] | `vcf-workloads` | HIGGS-like datasets, key streams, churn traces |
//! | [`analysis`] | `vcf-analysis` | Section V analytic model |
//! | [`sketches`] | `vcf-sketches` | vertical-hashing Count-Min sketch, binary fuse filters |

#![forbid(unsafe_code)]

pub use vcf_analysis as analysis;
pub use vcf_baselines as baselines;
pub use vcf_core as vcf;
pub use vcf_hash as hash;
pub use vcf_sketches as sketches;
pub use vcf_table as table;
pub use vcf_traits as traits;
pub use vcf_workloads as workloads;

/// Hot/cold tiered filter in the working configuration: a `ScalableVcf`
/// hot tier rotating into frozen 8-bit binary fuse generations
/// (ε ≈ 2⁻⁸ cold tier at ~9 bits/key).
pub type TieredVcf = vcf_core::TieredFilter<vcf_sketches::BinaryFuse8>;

/// Tiered filter with 16-bit fuse lanes: a lower cold-tier false
/// positive rate (ε ≈ 2⁻¹⁶) at ~18 bits/key.
pub type TieredVcf16 = vcf_core::TieredFilter<vcf_sketches::BinaryFuse16>;

/// The types most applications need, in one import.
pub mod prelude {
    pub use crate::{TieredVcf, TieredVcf16};
    pub use vcf_baselines::CuckooFilter;
    pub use vcf_core::{
        ConcurrentVcf, CuckooConfig, Dvcf, DynamicVcf, KVcf, ScalableVcf, ShardedConcurrentVcf,
        ShardedScalableVcf, ShardedVcf, TieredFilter, VerticalCuckooFilter,
    };
    pub use vcf_hash::HashKind;
    pub use vcf_sketches::{BinaryFuse16, BinaryFuse8};
    pub use vcf_traits::{
        BuildError, ConcurrentFilter, Filter, FilterExt, FrozenBuilder, FrozenSet, InsertError,
        LifecycleFilter, ScalableFilter, Stats,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_basics() {
        let mut filter =
            VerticalCuckooFilter::new(CuckooConfig::new(64).with_hash(HashKind::Djb2)).unwrap();
        filter.insert(b"a").unwrap();
        assert!(filter.contains(b"a"));
        let keys: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        assert_eq!(
            filter.insert_best_effort(keys.iter().map(Vec::as_slice)),
            10
        );
    }

    #[test]
    fn tiered_alias_rotates_end_to_end() {
        let mut filter = TieredVcf::new(CuckooConfig::new(1 << 8)).unwrap();
        for i in 0..500u32 {
            filter.insert(&i.to_le_bytes()).unwrap();
        }
        assert!(filter.rotate());
        while filter.rotation_backlog() > 0 {
            filter.rotate_step(64);
        }
        assert_eq!(filter.generations(), 1);
        for i in 0..500u32 {
            assert!(filter.contains(&i.to_le_bytes()), "key {i} lost");
        }
    }
}
